"""PERF-SVC — EMEWS service TCP round-trip costs.

The remote hop every federated deployment pays: EQSQL operations through
the JSON-over-TCP service versus direct in-process store calls.  The gap
is the per-operation WAN-protocol overhead (serialization + framing +
dispatch), which bounds how chatty an ME algorithm can afford to be and
motivates the batch operations of §V-B.
"""

from __future__ import annotations

import pytest

from repro.core import EQSQL, RemoteTaskStore, TaskService
from repro.db import MemoryTaskStore

N = 100


@pytest.fixture
def remote_eq():
    backing = MemoryTaskStore()
    service = TaskService(backing).start()
    host, port = service.address
    store = RemoteTaskStore(host, port)
    eq = EQSQL(store)
    yield eq
    store.close()
    service.stop()
    backing.close()


@pytest.fixture
def local_eq():
    eq = EQSQL(MemoryTaskStore())
    yield eq
    eq.close()


def submit_pop_report(eq):
    futures = eq.submit_tasks("bench", 0, ["{}"] * N)
    while True:
        messages = eq.query_task(0, n=10, timeout=0)
        if isinstance(messages, dict):
            break
        for message in messages:
            eq.report_task(message["eq_task_id"], 0, "r")
    popped = eq.pop_completed_ids([f.eq_task_id for f in futures])
    assert len(popped) == N


def test_remote_service_cycle(benchmark, remote_eq):
    benchmark.pedantic(submit_pop_report, args=(remote_eq,), rounds=3, iterations=1)


def test_local_store_cycle(benchmark, local_eq):
    benchmark.pedantic(submit_pop_report, args=(local_eq,), rounds=3, iterations=1)


def test_remote_single_op_latency(benchmark, remote_eq):
    """One submit per call: the per-request protocol cost."""
    benchmark(lambda: remote_eq.submit_task("bench", 1, "{}"))


def test_remote_batch_submit_amortizes(benchmark, remote_eq):
    """One request carrying 100 tasks: the batch API's advantage."""
    benchmark(lambda: remote_eq.submit_tasks("bench", 2, ["{}"] * 100))


def test_remote_rpc_lockstep(benchmark, remote_eq):
    """N requests, N round trips: the pre-pipelining wire behaviour."""
    store = remote_eq.store
    benchmark(lambda: [store.queue_in_length() for _ in range(N)])


def test_remote_rpc_pipelined(benchmark, remote_eq):
    """The same N requests with 64 in flight: one coalesced send per
    batch, responses matched by id — vs test_remote_rpc_lockstep."""
    store = remote_eq.store

    def run():
        with store.pipeline(max_in_flight=64) as pipe:
            calls = [pipe.call("queue_in_length", {}) for _ in range(N)]
        return [c.result() for c in calls]

    benchmark(run)


def _claimed_ids(eq, eq_type):
    eq.submit_tasks("bench", eq_type, ["{}"] * N)
    messages = eq.query_task(eq_type, n=N, timeout=5)
    return ([m["eq_task_id"] for m in messages],), {}


def test_remote_report_single(benchmark, remote_eq):
    """N results, one report RPC each: the pre-batching hot path."""

    def run(ids):
        for tid in ids:
            remote_eq.report_task(tid, 3, "r")

    benchmark.pedantic(
        run, setup=lambda: _claimed_ids(remote_eq, 3), rounds=3, iterations=1
    )


def test_remote_report_batched(benchmark, remote_eq):
    """The same N results in a single report_batch RPC — vs
    test_remote_report_single."""

    def run(ids):
        remote_eq.report_tasks([(tid, 4, "r") for tid in ids])

    benchmark.pedantic(
        run, setup=lambda: _claimed_ids(remote_eq, 4), rounds=3, iterations=1
    )

"""ABL-GPR — ablation: does GPR reprioritization help? (motivates §VI).

Runs the Figure 4 workflow with and without GPR reprioritization and
compares how fast good Ackley values surface in the completion stream.
Expected shape: with reprioritization, the best-so-far trajectory drops
earlier (lower area-under-curve and earlier time-to-good-value) — the
fast time-to-solution rationale of §II-B1d.  The final best is similar
in both (all 750 points are evaluated either way; reprioritization
changes *order*, not the set).
"""

from __future__ import annotations

import numpy as np

from repro.sim import Fig4Config, run_fig4
from repro.telemetry import ascii_chart, render_table


def auc(trajectory: np.ndarray) -> float:
    """Mean best-so-far over completions (lower = faster progress)."""
    return float(np.mean(trajectory))


def completions_to_reach(trajectory: np.ndarray, value: float) -> int:
    """Completions until best-so-far first drops below ``value``."""
    hits = np.nonzero(trajectory <= value)[0]
    return int(hits[0]) + 1 if hits.size else len(trajectory)


def test_gpr_vs_no_reprioritization(benchmark, report):
    def run_both():
        with_gpr = run_fig4(Fig4Config())
        without = run_fig4(Fig4Config(repri_every=10_000))  # never fires
        return with_gpr, without

    with_gpr, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    traj_gpr = with_gpr.best_trajectory()
    traj_none = without.best_trajectory()
    target = float(np.min(traj_none)) * 1.10  # within 10% of the best

    rows = [
        ["GPR reprioritization", auc(traj_gpr),
         completions_to_reach(traj_gpr, target), float(traj_gpr[-1]),
         len(with_gpr.reprioritizations)],
        ["no reprioritization", auc(traj_none),
         completions_to_reach(traj_none, target), float(traj_none[-1]),
         len(without.reprioritizations)],
    ]
    report(
        "ABL-GPR best-so-far progress, 750 Ackley tasks\n"
        + render_table(
            ["variant", "mean best-so-far", "completions to 1.1x best",
             "final best", "repri count"],
            rows,
        )
        + "\n"
        + ascii_chart(traj_gpr, width=80, label="best-so-far (GPR)   ")
        + "\n"
        + ascii_chart(traj_none, width=80, label="best-so-far (none)  ")
    )

    assert len(without.reprioritizations) == 0
    assert len(with_gpr.reprioritizations) > 5
    # The GPR ordering surfaces good values sooner...
    assert auc(traj_gpr) < auc(traj_none)
    assert completions_to_reach(traj_gpr, target) <= completions_to_reach(
        traj_none, target
    )
    # ...while both evaluate the same point set to the same final best.
    assert traj_gpr[-1] == traj_none[-1]

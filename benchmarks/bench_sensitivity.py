"""SENS — sensitivity: do the Figure 3 shape claims survive the
runtime model?

The absolute numbers in this reproduction depend on the calibrated task
runtime (the paper's lognormal sleep).  This bench re-runs the Figure 3
panels across a 6x range of mean task runtimes and across runtime
heterogeneity (sigma) and asserts the paper's qualitative ordering at
every point — evidence that the reproduced shapes are properties of the
fetch policy, not of one lucky parameterization.
"""

from __future__ import annotations

from repro.sim import Fig3Config, run_fig3_panel
from repro.sim.workload import RuntimeModel
from repro.telemetry import render_table

MEANS = (5.0, 15.0, 30.0)
SIGMAS = (0.25, 0.5, 1.0)


def panels_for(runtime: RuntimeModel):
    return {
        (b, t): run_fig3_panel(
            Fig3Config(batch_size=b, threshold=t, n_tasks=300, runtime=runtime)
        )
        for b, t in ((50, 1), (33, 1), (33, 15))
    }


def test_ordering_robust_to_runtime_mean(benchmark, report):
    def sweep():
        return {
            mean: panels_for(RuntimeModel(mean=mean, sigma=0.5)) for mean in MEANS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for mean in MEANS:
        panels = results[mean]
        rows.append(
            [
                mean,
                panels[(50, 1)].stats["utilization"],
                panels[(33, 1)].stats["utilization"],
                panels[(33, 15)].stats["utilization"],
            ]
        )
        over = panels[(50, 1)].stats["utilization"]
        exact = panels[(33, 1)].stats["utilization"]
        loose = panels[(33, 15)].stats["utilization"]
        assert over >= exact - 1e-6, f"ordering broken at mean={mean}"
        assert exact > loose, f"ordering broken at mean={mean}"
    report(
        "SENS Fig 3 utilization ordering across task runtime means\n"
        + render_table(
            ["runtime mean (s)", "batch50/thr1", "batch33/thr1", "batch33/thr15"],
            rows,
        )
    )


def test_ordering_robust_to_heterogeneity(benchmark, report):
    def sweep():
        return {
            sigma: panels_for(RuntimeModel(mean=15.0, sigma=sigma))
            for sigma in SIGMAS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for sigma in SIGMAS:
        panels = results[sigma]
        rows.append(
            [
                sigma,
                panels[(50, 1)].stats["utilization"],
                panels[(33, 1)].stats["utilization"],
                panels[(33, 15)].stats["utilization"],
            ]
        )
        assert (
            panels[(50, 1)].stats["utilization"]
            >= panels[(33, 1)].stats["utilization"] - 1e-6
        )
        assert (
            panels[(33, 1)].stats["utilization"]
            > panels[(33, 15)].stats["utilization"]
        )
    report(
        "SENS Fig 3 utilization ordering across runtime heterogeneity\n"
        + render_table(
            ["sigma", "batch50/thr1", "batch33/thr1", "batch33/thr15"], rows
        )
    )

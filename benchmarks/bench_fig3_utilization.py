"""FIG3 — Figure 3: worker-pool utilization vs fetch policy.

Paper setup: one worker pool with 33 workers (a 36-core Bebop node)
consuming 750 lognormal-padded Ackley tasks, under three batch/threshold
policies.  Paper claims reproduced here:

- (50, 1) "clearly shows the best utilization": oversubscription keeps
  an in-memory task cache, so workers never wait on the DB;
- (33, 1) is lower: "each time a task is completed another must be
  fetched from the database, during which additional tasks may
  complete", but every queued task stays reprioritizable;
- (33, 15) shows "the saw tooth pattern where multiple workers remain
  idle for several seconds at a time" and far fewer DB queries.

The benchmark times the full 750-task discrete-event run per panel and
prints the concurrency series the figure plots.
"""

from __future__ import annotations

import pytest

from repro.sim import Fig3Config, run_fig3_panel
from repro.sim.scenarios import FIG3_PANELS
from repro.telemetry import ascii_chart, render_table, sample_series

PANEL_IDS = [f"batch{b}_thr{t}" for b, t in FIG3_PANELS]


@pytest.mark.parametrize(
    "batch,threshold", FIG3_PANELS, ids=PANEL_IDS
)
def test_fig3_panel(benchmark, report, batch, threshold):
    config = Fig3Config(batch_size=batch, threshold=threshold)
    result = benchmark.pedantic(
        run_fig3_panel, args=(config,), rounds=1, iterations=1
    )
    stats = result.stats

    _, values = sample_series(result.series, n_samples=100)
    lines = [
        f"FIG3 panel {config.label()} — 33 workers, 750 tasks",
        ascii_chart(values, max_value=config.n_workers, width=80,
                    label="running tasks"),
        render_table(
            ["metric", "value"],
            [
                ["mean concurrency", stats["mean_concurrency"]],
                ["utilization", stats["utilization"]],
                ["time at full 33", stats["full_fraction"]],
                ["mean dip depth", stats["dip_depth_mean"]],
                ["makespan (virt s)", result.makespan],
                ["DB fetches", result.n_fetches],
            ],
        ),
    ]
    report("\n".join(lines))

    # Every panel drains the workload with bounded concurrency.
    assert result.series.counts.max() <= config.n_workers
    assert stats["utilization"] > 0.5


def test_fig3_shape_claims(benchmark, report):
    """The cross-panel ordering the paper's Figure 3 demonstrates."""

    def run_all():
        return {
            (b, t): run_fig3_panel(Fig3Config(batch_size=b, threshold=t))
            for b, t in FIG3_PANELS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    over = results[(50, 1)].stats
    exact = results[(33, 1)].stats
    loose = results[(33, 15)].stats

    rows = [
        [f"batch={b} thr={t}",
         results[(b, t)].stats["utilization"],
         results[(b, t)].stats["full_fraction"],
         results[(b, t)].stats["dip_depth_mean"],
         results[(b, t)].n_fetches]
        for b, t in FIG3_PANELS
    ]
    report(
        "FIG3 cross-panel comparison (paper: top >= middle > bottom)\n"
        + render_table(
            ["policy", "utilization", "full_frac", "dip_depth", "fetches"], rows
        )
    )

    # Top panel best utilization.
    assert over["utilization"] >= exact["utilization"] - 1e-6
    # Large threshold clearly worst.
    assert exact["utilization"] > loose["utilization"]
    # Saw-tooth: the loose policy spends far less time at full width
    # and issues far fewer fetches.
    assert loose["full_fraction"] < 0.5 * exact["full_fraction"]
    assert results[(33, 15)].n_fetches < results[(33, 1)].n_fetches / 2
    # Oversubscription keeps the pool essentially saturated.
    assert over["full_fraction"] > 0.85

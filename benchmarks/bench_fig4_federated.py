"""FIG4 — Figure 4: the federated three-pool GPR workflow.

Paper setup: 750 4-D Ackley tasks; worker pool 1 (33 workers) starts at
t=0; the GPR reprioritizes after every 50 completions (retraining runs
remotely — a round-trip delay during which pools keep consuming); pools
2 and 3 are submitted during reprioritizations 2 and 4 and begin only
after the batch scheduler's queue delay.

Shape claims reproduced (paper Fig 4 narration):

- the first reprioritization fires once the first 50 tasks complete
  ("starting at the 29 second mark" — ours lands at the same mark);
- each reprioritization covers a shrinking task set (700, 650, ...)
  with rank priorities 1..n;
- pools 2 and 3 "do not immediately start consuming tasks ... due to
  delays between submitting a worker pool job to Bebop and it actually
  beginning";
- reprioritization "becomes more frequent as the additional worker
  pools are added";
- the pools drain one queue equitably (every pool does real work).
"""

from __future__ import annotations

import numpy as np

from repro.sim import Fig4Config, reassignment_stats, run_fig4
from repro.telemetry import ascii_chart, render_table, sample_series


def test_fig4_federated_workflow(benchmark, report):
    config = Fig4Config()
    result = benchmark.pedantic(run_fig4, args=(config,), rounds=1, iterations=1)

    lines = [
        f"FIG4 federated workflow — 750 tasks, 3x33-worker pools, "
        f"repri every {config.repri_every} (makespan {result.makespan:.0f} virt s)",
        "",
        "Per-pool concurrency (bottom of the paper's figure):",
    ]
    for name in result.pool_names:
        _, values = sample_series(result.pool_series[name], n_samples=100)
        lines.append(ascii_chart(values, max_value=config.n_workers, width=80, label=name))

    lines += [
        "",
        "Pool timing (submit -> start; the scheduler-queue lag):",
        render_table(
            ["pool", "submitted", "started", "queue wait", "tasks done"],
            [
                [name, *result.pool_timing[name],
                 result.pool_timing[name][1] - result.pool_timing[name][0],
                 result.pool_completed[name]]
                for name in result.pool_names
            ],
        ),
        "",
        "Reprioritization timeline (top of the paper's figure):",
        render_table(
            ["#", "start", "duration", "completed", "reprioritized"],
            [
                [r.index, r.time_start, r.time_stop - r.time_start,
                 r.n_completed, r.n_reprioritized]
                for r in result.reprioritizations
            ],
        ),
        "",
        "Priority reassignment churn (the trajectory lines of the figure):",
        render_table(
            ["#", "tasks", "mean |rank shift|", "max shift", "rho vs prev"],
            [
                [s.index, s.n_tasks, s.mean_abs_shift, s.max_abs_shift,
                 s.spearman_vs_previous]
                for s in reassignment_stats(result.reprioritizations)
            ],
        ),
    ]
    report("\n".join(lines))

    # --- shape assertions -----------------------------------------------------
    repri = result.reprioritizations
    assert len(repri) >= 8

    # First reprioritization triggers on the first 50 completions (the
    # batch poll may observe a few extra); with the paper's parameters
    # that lands near the 29-second mark.
    assert config.repri_every <= repri[0].n_completed < config.repri_every + 33
    assert 20 < repri[0].time_start < 45

    # Shrinking reprioritized sets, rank priorities 1..n.
    counts = [r.n_reprioritized for r in repri]
    assert all(b <= a for a, b in zip(counts, counts[1:]))
    first = repri[0].priorities
    assert sorted(first) == list(range(1, len(first) + 1))

    # Scheduler lag: added pools start strictly after submission.
    for name in result.pool_names[1:]:
        submitted, started = result.pool_timing[name]
        assert started > submitted

    # Cadence speeds up as pools join.
    gaps = result.repri_gaps()
    assert np.mean(gaps[-3:]) < np.mean(gaps[:3])

    # Equitable sharing: all pools work; all tasks accounted for.
    assert all(v > 0 for v in result.pool_completed.values())
    assert sum(result.pool_completed.values()) == config.n_tasks

    # Concurrency per pool bounded by its worker count.
    for series in result.pool_series.values():
        assert series.counts.max() <= config.n_workers

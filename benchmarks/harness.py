#!/usr/bin/env python
"""Runnable wrapper for the benchmark-regression harness.

Equivalent to ``python -m repro bench``; kept here so the benchmarks
directory is self-contained:

    PYTHONPATH=src python benchmarks/harness.py --smoke
    PYTHONPATH=src python benchmarks/harness.py --baseline benchmarks/baseline.json

The real logic lives in :mod:`repro.bench` so it is importable (and
unit-tested) wherever the package is installed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import BENCHES, DEFAULT_TOLERANCE, run_harness  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names", nargs="*", help=f"benches to run (default all: {', '.join(BENCHES)})"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads: exercise every code path quickly")
    parser.add_argument("--out-dir", default="benchmarks/reports",
                        help="directory for BENCH_<name>.json results")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to compare against (exit 1 on regression)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional degradation vs baseline")
    args = parser.parse_args(argv)
    return run_harness(
        names=args.names or None,
        smoke=args.smoke,
        out_dir=args.out_dir,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
    )


if __name__ == "__main__":
    raise SystemExit(main())

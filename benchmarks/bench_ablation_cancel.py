"""ABL-CANCEL — ablation: task cancellation in asynchronous BO.

§V-B lists cancellation among the asynchronous API's levers ("cancel
less promising evaluations").  This bench runs the full Fig 2 loop
(re-sample + reorder via the async BO driver) with and without EI-based
cancellation against a live worker pool and compares solution quality
and how much enqueued-but-hopeless work was shed.
"""

from __future__ import annotations

import numpy as np

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.me import BOConfig, ackley, run_async_bo
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.telemetry import render_table

WORK_TYPE = 0


def run_campaign(cancel_fraction: float, seed: int):
    eq = EQSQL(MemoryTaskStore())
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda d: {"y": float(ackley(d["x"]))}),
        PoolConfig(work_type=WORK_TYPE, n_workers=4),
    ).start()
    try:
        config = BOConfig(
            bounds=[(-10.0, 10.0)] * 2,
            n_initial=15,
            n_total=60,
            batch_completed=5,
            proposals_per_round=6,
            cancel_fraction=cancel_fraction,
            seed=seed,
        )
        return run_async_bo(eq, f"cancel-{cancel_fraction}", WORK_TYPE, config, timeout=120)
    finally:
        pool.stop()
        eq.close()


def test_cancellation_ablation(benchmark, report):
    def run_both():
        baseline = [run_campaign(0.0, seed) for seed in (1, 2, 3)]
        with_cancel = [run_campaign(0.3, seed) for seed in (1, 2, 3)]
        return baseline, with_cancel

    baseline, with_cancel = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def summarize(results):
        return (
            float(np.mean([r.best_y for r in results])),
            int(np.mean([r.n_canceled for r in results])),
            int(np.mean([r.n_submitted for r in results])),
        )

    base_best, base_cancel, base_sub = summarize(baseline)
    canc_best, canc_cancel, canc_sub = summarize(with_cancel)
    report(
        "ABL-CANCEL async BO with/without EI-based cancellation "
        "(2-D Ackley, 60 evaluations, mean of 3 seeds)\n"
        + render_table(
            ["variant", "mean best", "canceled", "submitted"],
            [
                ["no cancellation", base_best, base_cancel, base_sub],
                ["cancel_fraction=0.3", canc_best, canc_cancel, canc_sub],
            ],
        )
    )

    # Cancellation actually fires and the campaign still completes its
    # budget with comparable quality (within 2x of baseline).
    assert base_cancel == 0
    assert canc_cancel > 0
    assert all(r.y.shape == (60,) for r in baseline + with_cancel)
    assert canc_best < 2 * max(base_best, 1.0)

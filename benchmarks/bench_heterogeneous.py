"""HET — heterogeneous worker pools matched to work types (§IV-D).

"An ME algorithm may have two types of tasks that need to be executed:
1) a multi-process MPI-based simulation model; and 2) an optimization
component that most efficiently runs on a GPU.  Two worker pools can be
launched and configured on resources appropriate for these two different
work types."

Scenario: 600 simulation tasks (work type SIM) stream through a
33-worker CPU pool; after every 50 simulation completions the ME submits
one ML task (work type ML) served by a small fast "GPU" pool.  The
bench verifies strict type matching (each pool only ever runs its own
type), that ML tasks never steal CPU-pool capacity, and reports both
pools' utilization.
"""

from __future__ import annotations

import numpy as np

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.sim import SimPoolConfig, SimWorkerPool
from repro.simt import Environment
from repro.telemetry import TraceCollector, concurrency_series, render_table, utilization_stats

SIM_TYPE, ML_TYPE = 0, 1
N_SIM = 600
ML_EVERY = 50


def run_heterogeneous():
    env = Environment()
    eqsql = EQSQL(MemoryTaskStore(), clock=env.clock)
    trace = TraceCollector()
    rng = np.random.default_rng(7)
    sim_runtimes = rng.lognormal(np.log(15.0), 0.4, N_SIM)
    ml_runtime = 6.0

    def runtime_fn(tid, _payload):
        # ML tasks are submitted later; map sim ids to their runtimes.
        return float(sim_runtimes[tid - 1]) if tid <= N_SIM else ml_runtime

    cpu_pool = SimWorkerPool(
        env, eqsql,
        SimPoolConfig(name="cpu-pool", work_type=SIM_TYPE, n_workers=33),
        runtime_fn=runtime_fn, trace=trace,
    )
    gpu_pool = SimWorkerPool(
        env, eqsql,
        SimPoolConfig(name="gpu-pool", work_type=ML_TYPE, n_workers=4,
                      query_cost=0.1),
        runtime_fn=runtime_fn, trace=trace,
    )

    ml_submitted = [0]

    def me_process():
        futures = eqsql.submit_tasks("het", SIM_TYPE, ["{}"] * N_SIM)
        pending = {f.eq_task_id for f in futures}
        ml_pending: set[int] = set()
        done = 0
        since_ml = 0
        while pending or ml_pending:
            for tid, _ in eqsql.pop_completed_ids(sorted(pending)):
                pending.discard(tid)
                done += 1
                since_ml += 1
            for tid, _ in eqsql.pop_completed_ids(sorted(ml_pending)):
                ml_pending.discard(tid)
            if since_ml >= ML_EVERY and pending:
                since_ml = 0
                future = eqsql.submit_task("het", ML_TYPE, "{}")
                ml_pending.add(future.eq_task_id)
                ml_submitted[0] += 1
            yield env.timeout(0.5)

    me = env.process(me_process())
    cpu_pool.start()
    gpu_pool.start()
    env.run(until=me)
    makespan = env.now
    for pool in (cpu_pool, gpu_pool):
        pool.stop()
        env.run(until=pool.process)

    events = trace.snapshot()
    return {
        "eqsql": eqsql,
        "makespan": makespan,
        "cpu": cpu_pool,
        "gpu": gpu_pool,
        "ml_submitted": ml_submitted[0],
        "cpu_series": concurrency_series(events, source="cpu-pool", end=makespan),
        "gpu_series": concurrency_series(events, source="gpu-pool", end=makespan),
    }


def test_heterogeneous_work_type_matching(benchmark, report):
    result = benchmark.pedantic(run_heterogeneous, rounds=1, iterations=1)
    eqsql = result["eqsql"]
    cpu_stats = utilization_stats(result["cpu_series"], 33)
    gpu_stats = utilization_stats(result["gpu_series"], 4)

    report(
        "HET heterogeneous pools: 600 SIM tasks (CPU pool) + periodic ML "
        f"tasks (GPU pool), makespan {result['makespan']:.0f} virt s\n"
        + render_table(
            ["pool", "work type", "tasks", "utilization", "peak conc"],
            [
                ["cpu-pool", "SIM", result["cpu"].tasks_completed,
                 cpu_stats["utilization"], int(result["cpu_series"].counts.max())],
                ["gpu-pool", "ML", result["gpu"].tasks_completed,
                 gpu_stats["utilization"], int(result["gpu_series"].counts.max())],
            ],
        )
    )

    # Everything of both types completed.
    assert result["cpu"].tasks_completed == N_SIM
    assert result["gpu"].tasks_completed == result["ml_submitted"] > 5

    # Strict type matching: every task row names the right pool.
    for tid in eqsql.store.tasks_for_experiment("het"):
        row = eqsql.task_info(tid)
        expected = "cpu-pool" if row.eq_task_type == SIM_TYPE else "gpu-pool"
        assert row.worker_pool == expected

    # The ML pool never touched CPU capacity: the CPU pool's peak
    # concurrency is its own worker count, unaffected by ML submissions.
    assert int(result["cpu_series"].counts.max()) == 33
    assert int(result["gpu_series"].counts.max()) <= 4
    # CPU pool stayed busy throughout.
    assert cpu_stats["utilization"] > 0.85

"""PERF-POOL — end-to-end worker pool throughput (real threads).

Submits a batch of trivial tasks and drives a threaded pool to drain it:
measures the full submit → fetch(batch/threshold) → execute → report →
collect loop, i.e. the platform overhead per task when the task itself
is free.
"""

from __future__ import annotations

import pytest

from repro.core import EQSQL, as_completed
from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

N_TASKS = 200


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_pool_end_to_end(benchmark, backend):
    store = MemoryTaskStore() if backend == "memory" else SqliteTaskStore(":memory:")
    eq = EQSQL(store)
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda d: d),
        PoolConfig(work_type=0, n_workers=4, batch_size=8, poll_delay=0.001),
    ).start()

    def drain():
        futures = eq.submit_tasks("bench", 0, ["{}"] * N_TASKS)
        done = list(as_completed(futures, delay=0.001, timeout=60))
        assert len(done) == N_TASKS

    benchmark.pedantic(drain, rounds=3, iterations=1)
    pool.stop()
    eq.close()


def test_mpi_pool_end_to_end(benchmark):
    """The Swift/T-style MPI pool on the same workload."""
    from repro.core import EQ_STOP
    from repro.pools import run_mpi_pool

    def drain():
        eq = EQSQL(MemoryTaskStore())
        eq.submit_tasks("bench", 0, ["{}"] * N_TASKS)
        eq.submit_task("bench", 0, EQ_STOP, priority=-10)
        stats = run_mpi_pool(
            eq,
            PythonTaskHandler(lambda d: d),
            PoolConfig(work_type=0, n_workers=4, poll_delay=0.001),
            timeout=120,
        )
        assert stats.tasks_completed == N_TASKS
        eq.close()

    benchmark.pedantic(drain, rounds=3, iterations=1)

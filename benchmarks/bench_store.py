"""PERF-STORE — data sharing service costs vs payload size.

Measures the ProxyStore-style path the paper adds to sidestep the
fabric's 10 MB cap: store put, proxy creation (pointer-sized pickles),
and resolution, plus the simulated Globus transfer duration model across
payload sizes — the series that shows where out-of-band staging beats
inline payloads.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.store import MemoryConnector, Store, extract, register_store, unregister_store
from repro.telemetry import render_table
from repro.transfer import TransferClient, TransferEndpoint
from repro.util.ids import short_id

SIZES = [10_000, 1_000_000, 25_000_000]  # bytes (last exceeds the 10 MB cap)


@pytest.fixture
def store():
    name = short_id("bench-store")
    s = Store(name, MemoryConnector(name))
    register_store(s)
    yield s
    unregister_store(name)
    MemoryConnector.drop_space(name)


@pytest.mark.parametrize("size", SIZES)
def test_put_get_round_trip(benchmark, store, size):
    payload = np.zeros(size // 8)

    def round_trip():
        key = store.put(payload)
        out = store.get(key)
        store.evict(key)
        return out

    benchmark(round_trip)


def test_proxy_creation_and_resolution(benchmark, store):
    payload = np.zeros(1_000_000 // 8)

    def proxy_cycle():
        proxy = store.proxy(payload)
        shipped = pickle.dumps(proxy)  # what rides the task payload
        assert len(shipped) < 1000
        clone = pickle.loads(shipped)
        return float(np.sum(extract(clone)))

    benchmark(proxy_cycle)


def test_transfer_duration_model(benchmark, report):
    """The modelled wide-area cost series (no wall-clock sleeping)."""
    client = TransferClient()
    client.register_endpoint(TransferEndpoint("laptop", bandwidth=1e8, latency=0.01))
    client.register_endpoint(TransferEndpoint("bebop", bandwidth=1e9, latency=0.005))
    client.register_endpoint(TransferEndpoint("theta", bandwidth=5e9, latency=0.005))

    def build_rows():
        return [
            [
                f"{size / 1e6:g} MB",
                client.transfer_duration("laptop", "bebop", int(size)),
                client.transfer_duration("bebop", "theta", int(size)),
            ]
            for size in [1e6, 1e7, 1e8, 1e9]
        ]

    rows = benchmark(build_rows)
    report(
        "PERF-STORE modelled third-party transfer durations (s)\n"
        + render_table(["payload", "laptop->bebop", "bebop->theta"], rows)
    )
    # The slower link dominates; inter-HPC beats laptop uplink.
    assert client.transfer_duration("bebop", "theta", int(1e9)) < (
        client.transfer_duration("laptop", "bebop", int(1e9))
    )

"""PERF-EPI — domain workload task costs.

Per-task simulation cost for the three model scopes (ODE SEIR,
chain-binomial SEIR, network ABM) and the calibration objective — the
numbers that size worker-pool allocations for the epi examples.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.epi import (
    ABMParams,
    CalibrationProblem,
    NetworkABM,
    SEIRParams,
    SurveillanceModel,
    generate_surveillance,
    simulate_seir,
    simulate_stochastic_seir,
)

PARAMS = SEIRParams(beta=0.5, sigma=0.25, gamma=0.2, population=100_000)


def test_seir_ode(benchmark):
    result = benchmark(
        simulate_seir, PARAMS, initial_infected=5, t_end=200.0, dt=0.25
    )
    assert result.attack_rate() > 0.5


def test_stochastic_seir(benchmark):
    rng = np.random.default_rng(0)
    result = benchmark(
        simulate_stochastic_seir, PARAMS, rng, initial_infected=20, days=200
    )
    assert result.S[-1] >= 0


@pytest.mark.parametrize("n_agents", [1000, 5000])
def test_network_abm(benchmark, n_agents):
    graph = nx.watts_strogatz_graph(n_agents, 8, 0.1, seed=0)
    params = ABMParams(p_transmit=0.1, sigma=0.3, gamma=0.15)

    def run():
        abm = NetworkABM(graph, params)
        rng = np.random.default_rng(1)
        abm.seed(rng, 10)
        return abm.run(rng, days=150)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.counts[-1].sum() == n_agents


def test_calibration_objective(benchmark):
    truth = simulate_seir(PARAMS, initial_infected=5, t_end=100.0, dt=0.25)
    daily = truth.incidence[1:].reshape(100, 4).sum(axis=1)
    surveillance = SurveillanceModel(reporting_rate=0.3, delay_mean=2.0)
    observed = generate_surveillance(daily, surveillance, np.random.default_rng(0))
    problem = CalibrationProblem(
        observed=observed, population=PARAMS.population, surveillance=surveillance
    )
    theta = np.array([0.5, 0.25, 0.2])
    loss = benchmark(problem.loss, theta)
    assert loss >= 0

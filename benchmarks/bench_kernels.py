"""PERF-KERNEL — dataflow engine and DES kernel throughput.

The two execution substrates' overheads: dataflow node dispatch cost
(Swift/T-style concurrency) and DES events per second (what bounds how
large a Figure-4-style scenario the benchmarks can regenerate).
"""

from __future__ import annotations

import pytest

from repro.dataflow import DataflowEngine, TaskGraph
from repro.me import GaussianProcessRegressor
from repro.simt import Environment


class TestDataflow:
    def test_wide_graph_dispatch(self, benchmark):
        def run():
            g = TaskGraph()
            for i in range(300):
                g.add(f"n{i}", lambda i=i: i)
            g.add("sum", lambda *v: sum(v), deps=[f"n{i}" for i in range(300)])
            return DataflowEngine(max_workers=8).run(g)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.results["sum"] == sum(range(300))

    def test_deep_chain_dispatch(self, benchmark):
        def run():
            g = TaskGraph()
            g.add("n0", lambda: 0)
            for i in range(1, 400):
                g.add(f"n{i}", lambda x: x + 1, deps=[f"n{i-1}"])
            return DataflowEngine(max_workers=2).run(g)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.results["n399"] == 399


class TestSimtKernel:
    @pytest.mark.parametrize("n_processes", [100, 1000])
    def test_event_throughput(self, benchmark, n_processes):
        """N processes x 50 timeouts each: pure kernel dispatch."""

        def run():
            env = Environment()
            fired = [0]

            def proc():
                for _ in range(50):
                    yield env.timeout(1.0)
                    fired[0] += 1

            for _ in range(n_processes):
                env.process(proc())
            env.run()
            return fired[0]

        fired = benchmark.pedantic(run, rounds=3, iterations=1)
        assert fired == n_processes * 50


class TestGPR:
    @pytest.mark.parametrize("n_train", [100, 300])
    def test_fit_predict_cost(self, benchmark, n_train):
        """The reprioritization step's dominant cost at scale."""
        import numpy as np

        rng = np.random.default_rng(0)
        X = rng.uniform(-5, 5, size=(n_train, 4))
        y = np.sin(X).sum(axis=1)
        Xs = rng.uniform(-5, 5, size=(700, 4))

        def fit_predict():
            model = GaussianProcessRegressor(optimize_hyperparameters=False)
            model.fit(X, y)
            return model.predict(Xs)

        predicted = benchmark(fit_predict)
        assert predicted.shape == (700,)

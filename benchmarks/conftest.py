"""Benchmark harness plumbing.

Each figure/table bench generates the series the paper plots and
registers a text report through the ``report`` fixture.  Reports are
written to ``benchmarks/reports/<name>.txt`` and echoed into the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` output
carries both the timing table and the reproduced series.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_REPORTS_DIR = Path(__file__).parent / "reports"
_collected: list[tuple[str, str]] = []


@pytest.fixture
def report(request):
    """Call ``report(text)`` to register this bench's series output."""

    def add(text: str) -> None:
        name = request.node.name
        _REPORTS_DIR.mkdir(exist_ok=True)
        (_REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
        _collected.append((name, text))

    return add


def pytest_terminal_summary(terminalreporter):
    if not _collected:
        return
    terminalreporter.write_sep("=", "reproduced series reports")
    for name, text in _collected:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)

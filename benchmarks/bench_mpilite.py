"""PERF-MPI — mpilite messaging costs.

Point-to-point round trips and collectives on the simulated MPI
substrate: the per-message cost the Swift/T-style pool driver pays.
"""

from __future__ import annotations

import operator

import pytest

from repro.mpilite import mpi_run


def test_ping_pong(benchmark):
    def program(comm):
        if comm.rank == 0:
            for i in range(200):
                comm.send(i, dest=1)
                comm.recv(source=1)
        else:
            for _ in range(200):
                value = comm.recv(source=0)
                comm.send(value, dest=0)

    benchmark.pedantic(lambda: mpi_run(2, program), rounds=3, iterations=1)


@pytest.mark.parametrize("size", [2, 4, 8])
def test_allreduce(benchmark, size):
    def program(comm):
        total = 0
        for _ in range(50):
            total = comm.allreduce(comm.rank, operator.add)
        return total

    def run():
        results = mpi_run(size, program)
        assert results[0] == size * (size - 1) // 2

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_scatter_gather_large_payload(benchmark):
    import numpy as np

    chunk = np.zeros(10_000)

    def program(comm):
        data = [chunk] * comm.size if comm.rank == 0 else None
        local = comm.scatter(data, root=0)
        return comm.gather(float(local.sum()), root=0)

    benchmark.pedantic(lambda: mpi_run(4, program), rounds=3, iterations=1)

"""PERF-RECOVER — fault-recovery cost.

How fast the platform puts a dead pool's work back on the queue: finding
orphaned RUNNING tasks and requeueing them, as a function of experiment
size — the time-to-repair component of the §IV-B fault-tolerance story.
"""

from __future__ import annotations

import pytest

from repro.core import EQSQL
from repro.core.recovery import find_orphaned_tasks, requeue_tasks
from repro.db import MemoryTaskStore, SqliteTaskStore

N_TASKS = 1000
N_ORPHANED = 200


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_find_and_requeue_orphans(benchmark, backend):
    store = MemoryTaskStore() if backend == "memory" else SqliteTaskStore(":memory:")
    eq = EQSQL(store)
    eq.submit_tasks("exp", 0, ["{}"] * N_TASKS)

    def cycle():
        # A pool claims a slab of work, then "dies".
        eq.query_task(0, n=N_ORPHANED, worker_pool="doomed", timeout=0)
        orphans = find_orphaned_tasks(eq, "exp", worker_pool="doomed")
        assert len(orphans) == N_ORPHANED
        assert requeue_tasks(eq, orphans) == N_ORPHANED

    benchmark(cycle)
    eq.close()

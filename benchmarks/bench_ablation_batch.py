"""ABL-BATCH — ablation: utilization vs batch size (extends Figure 3).

Sweeps the batch size at threshold 1 for a 33-worker pool.  Expected
shape: utilization rises with batch size and saturates once the pool is
comfortably oversubscribed — but the oversubscribed surplus (claimed,
not-yet-running tasks) grows linearly, and every claimed task is
ineligible for reprioritization/cancellation: the trade-off §IV-D
describes, quantified.
"""

from __future__ import annotations

from repro.sim import Fig3Config, run_fig3_panel
from repro.telemetry import render_table

BATCH_SIZES = (33, 38, 43, 50, 66)


def test_batch_size_sweep(benchmark, report):
    def sweep():
        return {
            batch: run_fig3_panel(
                Fig3Config(batch_size=batch, threshold=1, n_tasks=400)
            )
            for batch in BATCH_SIZES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for batch in BATCH_SIZES:
        result = results[batch]
        surplus = batch - 33
        rows.append(
            [
                batch,
                result.stats["utilization"],
                result.stats["full_fraction"],
                surplus,
                result.makespan,
            ]
        )
    report(
        "ABL-BATCH utilization vs batch size (33 workers, threshold 1)\n"
        + render_table(
            ["batch", "utilization", "full_frac", "cache surplus", "makespan"], rows
        )
    )

    utils = [results[b].stats["utilization"] for b in BATCH_SIZES]
    # Monotone (within jitter) improvement up to saturation.
    assert utils[-1] >= utils[0]
    assert max(utils) - utils[0] >= 0.0
    # Oversubscribed runs keep the pool essentially full.
    assert results[66].stats["full_fraction"] > results[33].stats["full_fraction"]

"""PERF-DB — EMEWS DB operation throughput, per backend.

Microbenchmarks for the task-queue hot paths (submit, priority pop,
report, batch reprioritize) on both store engines.  The in-memory
backend is what the DES scenarios run on; the SQLite backend is the
durable deployment engine — the gap between them bounds how much of a
wall-clock run the database can account for.
"""

from __future__ import annotations

import pytest

from repro.db import MemoryTaskStore, SqliteTaskStore

N = 500


def make_store(kind: str):
    return MemoryTaskStore() if kind == "memory" else SqliteTaskStore(":memory:")


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_submit_throughput(benchmark, kind):
    store = make_store(kind)

    def submit_batch():
        store.create_tasks("exp", 0, ["{}"] * N)

    benchmark(submit_batch)
    store.close()


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_pop_report_cycle(benchmark, kind):
    store = make_store(kind)

    def cycle():
        ids = store.create_tasks("exp", 0, ["{}"] * N)
        while True:
            popped = store.pop_out(0, 25)
            if not popped:
                break
            for tid, _payload in popped:
                store.report(tid, 0, "r")
        store.pop_in_any(ids)

    benchmark(cycle)
    store.close()


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_reprioritize_batch(benchmark, kind):
    store = make_store(kind)
    ids = store.create_tasks("exp", 0, ["{}"] * N)
    flip = [False]

    def reprioritize():
        # Alternate two rankings so every call changes every row.
        flip[0] = not flip[0]
        base = list(range(N)) if flip[0] else list(range(N, 0, -1))
        assert store.update_priorities(ids, base) == N

    benchmark(reprioritize)
    store.close()


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_priority_pop_order_cost(benchmark, kind):
    """Pop with 10k queued tasks at random priorities (heap/index work)."""
    import random

    rng = random.Random(0)
    store = make_store(kind)
    priorities = [rng.randrange(1000) for _ in range(10_000)]
    store.create_tasks("exp", 0, ["{}"] * 10_000, priority=priorities)

    def pop_some():
        got = store.pop_out(0, 50)
        # Requeue to keep the queue size stable across rounds.
        for tid, _ in got:
            store.report(tid, 0, "r")
        refill = store.create_tasks(
            "exp", 0, ["{}"] * len(got), priority=[rng.randrange(1000) for _ in got]
        )
        return refill

    benchmark(pop_some)
    store.close()

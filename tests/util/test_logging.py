"""Tests for the structured logging helper."""

from __future__ import annotations

import io
import json
import logging

from repro.util.logging import (
    ROOT_LOGGER,
    JsonLinesFormatter,
    StructuredFormatter,
    configure_logging,
    get_logger,
    log_event,
)


def _teardown_root() -> None:
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_prefixes_bare_names(self):
        assert get_logger("telemetry.export").name == "repro.telemetry.export"

    def test_keeps_qualified_names(self):
        assert get_logger("repro.core.service").name == "repro.core.service"
        assert get_logger("repro").name == "repro"

    def test_same_logger_both_spellings(self):
        assert get_logger("core.x") is get_logger("repro.core.x")


class TestConfigureLogging:
    def test_text_output(self):
        stream = io.StringIO()
        try:
            configure_logging(stream=stream)
            log_event(get_logger("test.mod"), "task.done", eq_task_id=7, pool="p1")
            line = stream.getvalue().strip()
            assert "INFO task.done" in line
            assert "eq_task_id=7" in line
            assert "pool=p1" in line
        finally:
            _teardown_root()

    def test_json_lines_output(self):
        stream = io.StringIO()
        try:
            configure_logging(stream=stream, json_lines=True)
            log_event(get_logger("test.mod"), "trace.saved", spans=3, path="t.json")
            record = json.loads(stream.getvalue().strip())
            assert record["event"] == "trace.saved"
            assert record["spans"] == 3
            assert record["level"] == "INFO"
            assert record["logger"] == "repro.test.mod"
        finally:
            _teardown_root()

    def test_reconfigure_does_not_stack_handlers(self):
        try:
            configure_logging(stream=io.StringIO())
            configure_logging(stream=io.StringIO())
            assert len(logging.getLogger(ROOT_LOGGER).handlers) == 1
        finally:
            _teardown_root()

    def test_level_filtering(self):
        stream = io.StringIO()
        try:
            configure_logging(level=logging.WARNING, stream=stream)
            log_event(get_logger("test.mod"), "quiet.event", level=logging.DEBUG)
            assert stream.getvalue() == ""
            log_event(get_logger("test.mod"), "loud.event", level=logging.ERROR)
            assert "loud.event" in stream.getvalue()
        finally:
            _teardown_root()


class TestFormatters:
    def _record(self, **fields):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "my.event", (), None
        )
        if fields:
            record.repro_fields = fields
        return record

    def test_structured_quotes_awkward_values(self):
        text = StructuredFormatter().format(
            self._record(message="two words", path="a=b")
        )
        assert 'message="two words"' in text
        assert 'path="a=b"' in text

    def test_structured_formats_floats_compactly(self):
        text = StructuredFormatter().format(self._record(seconds=0.123456789))
        assert "seconds=0.123457" in text

    def test_json_formatter_event_key_wins(self):
        # A field named "event" must not clobber the event name itself.
        record = self._record(event="field-value")
        payload = json.loads(JsonLinesFormatter().format(record))
        assert payload["event"] == "my.event"

    def test_json_formatter_serializes_unjsonable(self):
        payload = json.loads(
            JsonLinesFormatter().format(self._record(obj=object()))
        )
        assert "object" in payload["obj"]


class TestTraceCorrelation:
    """Log↔trace correlation: formatters stamp the active span's ids."""

    def _record(self):
        return logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "my.event", (), None
        )

    def test_structured_stamps_active_span(self):
        from repro.telemetry.tracing import Tracer, get_tracer, set_tracer

        previous = set_tracer(Tracer(enabled=True))
        try:
            tracer = get_tracer()
            with tracer.span("op", component="test"):
                context = tracer.current_context()
                text = StructuredFormatter().format(self._record())
            assert f"trace_id={context.trace_id}" in text
            assert f"span_id={context.span_id}" in text
        finally:
            set_tracer(previous)

    def test_json_stamps_active_span(self):
        from repro.telemetry.tracing import Tracer, get_tracer, set_tracer

        previous = set_tracer(Tracer(enabled=True))
        try:
            tracer = get_tracer()
            with tracer.span("op", component="test"):
                context = tracer.current_context()
                payload = json.loads(JsonLinesFormatter().format(self._record()))
            assert payload["trace_id"] == context.trace_id
            assert payload["span_id"] == context.span_id
        finally:
            set_tracer(previous)

    def test_no_stamp_when_tracing_disabled(self):
        # The default tracer is disabled: no trace keys appear.
        text = StructuredFormatter().format(self._record())
        assert "trace_id=" not in text
        payload = json.loads(JsonLinesFormatter().format(self._record()))
        assert "trace_id" not in payload and "span_id" not in payload

    def test_no_stamp_outside_any_span(self):
        from repro.telemetry.tracing import Tracer, set_tracer

        previous = set_tracer(Tracer(enabled=True))
        try:
            text = StructuredFormatter().format(self._record())
            assert "trace_id=" not in text
        finally:
            set_tracer(previous)

    def test_explicit_trace_field_wins_in_json(self):
        # A caller-provided trace_id field is not clobbered by the stamp.
        from repro.telemetry.tracing import Tracer, get_tracer, set_tracer

        previous = set_tracer(Tracer(enabled=True))
        try:
            record = self._record()
            record.repro_fields = {"trace_id": "caller-supplied"}
            with get_tracer().span("op", component="test"):
                payload = json.loads(JsonLinesFormatter().format(record))
            assert payload["trace_id"] == "caller-supplied"
        finally:
            set_tracer(previous)


class TestSilentByDefault:
    def test_no_handlers_from_import(self):
        # The library must not attach handlers on import; only
        # configure_logging does.
        import repro  # noqa: F401

        assert logging.getLogger(ROOT_LOGGER).handlers == []

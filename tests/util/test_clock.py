"""Tests for the clock abstraction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.clock import SystemClock, VirtualClock


class TestSystemClock:
    def test_starts_near_zero(self):
        clock = SystemClock()
        assert 0.0 <= clock.now() < 1.0

    def test_monotonic(self):
        clock = SystemClock()
        samples = [clock.now() for _ in range(100)]
        assert samples == sorted(samples)

    def test_sleep_advances(self):
        clock = SystemClock()
        t0 = clock.now()
        clock.sleep(0.01)
        assert clock.now() - t0 >= 0.009

    def test_sleep_zero_and_negative_are_noops(self):
        clock = SystemClock()
        clock.sleep(0)
        clock.sleep(-1)  # must not raise

    def test_deadline_none(self):
        clock = SystemClock()
        assert clock.deadline(None) is None
        assert not clock.expired(None)

    def test_deadline_expiry(self):
        clock = SystemClock()
        deadline = clock.deadline(0.0)
        assert clock.expired(deadline)

    def test_future_deadline_not_expired(self):
        clock = SystemClock()
        assert not clock.expired(clock.deadline(60.0))


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_cannot_move_backwards(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to_same_time_ok(self):
        clock = VirtualClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_sleep_forbidden(self):
        with pytest.raises(RuntimeError):
            VirtualClock().sleep(1.0)

    def test_deadline_uses_virtual_time(self):
        clock = VirtualClock()
        deadline = clock.deadline(10.0)
        assert not clock.expired(deadline)
        clock.advance(10.0)
        assert clock.expired(deadline)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
    def test_monotonic_under_any_advances(self, deltas):
        clock = VirtualClock()
        last = clock.now()
        for dt in deltas:
            clock.advance(dt)
            assert clock.now() >= last
            last = clock.now()

"""Tests for serialization helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import SerializationError
from repro.util.serialization import (
    decode_object,
    decode_object_b64,
    encode_object,
    encode_object_b64,
    json_dumps,
    json_loads,
    payload_size,
    pickled_size,
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)


class TestJson:
    @given(json_values)
    def test_round_trip(self, value):
        assert json_loads(json_dumps(value)) == value

    def test_non_serializable_raises(self):
        with pytest.raises(SerializationError):
            json_dumps(object())

    def test_invalid_json_raises(self):
        with pytest.raises(SerializationError):
            json_loads("{not json")

    def test_compact_output(self):
        assert json_dumps({"a": [1, 2]}) == '{"a":[1,2]}'


class TestObjectEncoding:
    @given(json_values)
    def test_pickle_round_trip(self, value):
        assert decode_object(encode_object(value)) == value

    def test_b64_round_trip(self):
        data = {"fn": "ackley", "x": [1.0, 2.0]}
        assert decode_object_b64(encode_object_b64(data)) == data

    def test_unpicklable_raises(self):
        with pytest.raises(SerializationError):
            encode_object(lambda x: x)  # local lambda is unpicklable

    def test_corrupt_bytes_raise(self):
        with pytest.raises(SerializationError):
            decode_object(b"\x00garbage")

    def test_bad_base64_raises(self):
        with pytest.raises(SerializationError):
            decode_object_b64("!!not base64!!")


class TestPayloadSize:
    def test_bytes(self):
        assert payload_size(b"abcd") == 4

    def test_str_utf8(self):
        assert payload_size("abc") == 3
        assert payload_size("é") == 2  # two bytes in UTF-8

    def test_object_uses_pickle_size(self):
        value = list(range(100))
        assert payload_size(value) == len(encode_object(value))

    @given(json_values)
    def test_pickled_size_matches_encode(self, value):
        assert pickled_size(value) == len(encode_object(value))

    def test_pickled_size_unpicklable_raises(self):
        with pytest.raises(SerializationError):
            pickled_size(lambda: None)

"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.util import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in (
            "TimeoutError_",
            "PayloadTooLargeError",
            "SerializationError",
            "AuthenticationError",
            "AuthorizationError",
            "NotFoundError",
            "InvalidStateError",
            "CancelledError_",
            "EndpointUnavailableError",
            "SchedulerError",
            "TransferError",
            "DataError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError), name

    def test_authorization_is_authentication(self):
        # Catching AuthenticationError covers both credential and scope
        # failures — the coarse check services perform.
        assert issubclass(errors.AuthorizationError, errors.AuthenticationError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.TransferError("x")


class TestPayloadTooLarge:
    def test_message_carries_sizes_and_remedy(self):
        exc = errors.PayloadTooLargeError(2048, 1024, what="task result")
        assert exc.size == 2048
        assert exc.limit == 1024
        text = str(exc)
        assert "2048" in text and "1024" in text
        assert "task result" in text
        assert "data sharing service" in text  # points at the fix

"""Property-based tests for canonical hashing (ISSUE 10 satellite).

The cache key is only sound if it is a pure function of payload
*content*: insertion order, JSON whitespace, and process boundaries
must not change it, while any value difference must.  Hypothesis
drives those invariants over arbitrary JSON-like structures; the
subprocess test pins down ``PYTHONHASHSEED`` independence.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.util.serialization import SerializationError, cache_key, canonical_dumps

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

# JSON-representable values.  Floats are restricted to finite ones:
# NaN/Infinity are not canonically serializable (allow_nan=False) and
# NaN breaks the equality the properties are stated in.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


def shuffled_dumps(obj: object, rng) -> str:
    """A non-canonical dump: dict keys in a random insertion order."""

    def reorder(value):
        if isinstance(value, dict):
            items = [(k, reorder(v)) for k, v in value.items()]
            rng.shuffle(items)
            return dict(items)
        if isinstance(value, list):
            return [reorder(v) for v in value]
        return value

    return json.dumps(reorder(obj), indent=rng.choice([None, 1, 2]))


class TestCanonicalDumps:
    @given(json_values)
    def test_round_trip_is_identity(self, value):
        canonical = canonical_dumps(value)
        assert canonical_dumps(json.loads(canonical)) == canonical

    @given(json_values)
    def test_key_order_does_not_matter(self, value):
        import random

        rng = random.Random(0)
        assert canonical_dumps(json.loads(shuffled_dumps(value, rng))) == (
            canonical_dumps(value)
        )

    def test_rejects_non_json(self):
        with pytest.raises(SerializationError):
            canonical_dumps({"x": object()})

    def test_rejects_nan(self):
        with pytest.raises(SerializationError):
            canonical_dumps(float("nan"))


class TestCacheKey:
    @given(st.integers(min_value=0, max_value=10), json_values)
    def test_invariant_under_dict_order_and_whitespace(self, eq_type, value):
        import random

        rng = random.Random(1)
        base = cache_key(eq_type, json.dumps(value))
        for _ in range(3):
            assert cache_key(eq_type, shuffled_dumps(value, rng)) == base

    @given(st.integers(min_value=0, max_value=10), json_values)
    def test_json_round_trip_stable(self, eq_type, value):
        payload = json.dumps(value)
        rehydrated = json.dumps(json.loads(payload))
        assert cache_key(eq_type, payload) == cache_key(eq_type, rehydrated)

    @given(json_values, json_values)
    def test_distinct_payloads_distinct_keys(self, a, b):
        if canonical_dumps(a) == canonical_dumps(b):
            return
        assert cache_key(0, json.dumps(a)) != cache_key(0, json.dumps(b))

    @given(st.integers(min_value=0, max_value=5), json_values)
    def test_eq_type_is_part_of_the_key(self, eq_type, value):
        payload = json.dumps(value)
        assert cache_key(eq_type, payload) != cache_key(eq_type + 1, payload)

    def test_type_payload_boundary_is_unambiguous(self):
        # The eq_type is length-prefixed, so a digit cannot migrate
        # between the type and the payload text.
        assert cache_key(1, "23") != cache_key(12, "3")

    def test_non_json_payload_hashes_as_raw_text(self):
        # Sentinels like EQ_STOP are not JSON; they still get a stable,
        # distinct key.
        assert cache_key(0, "EQ_STOP") == cache_key(0, "EQ_STOP")
        assert cache_key(0, "EQ_STOP") != cache_key(0, "EQ_ABORT")


class TestCrossProcessStability:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=3), json_values)
    def test_stable_across_subprocess_boundaries(self, eq_type, value):
        payload = json.dumps(value)
        script = (
            "import sys, json\n"
            "from repro.util.serialization import cache_key\n"
            "eq_type, payload = json.loads(sys.stdin.read())\n"
            "sys.stdout.write(cache_key(eq_type, payload))\n"
        )
        import os
        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        # A different hash seed per subprocess: any dict-order
        # dependence in the canonicalization would show up here.
        env["PYTHONHASHSEED"] = "random"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([eq_type, payload]),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert proc.stdout == cache_key(eq_type, payload)

"""Tests for identifier generation."""

from __future__ import annotations

import threading

import pytest

from repro.util.ids import IdGenerator, short_id, uuid_hex


class TestIdGenerator:
    def test_sequential_from_start(self):
        gen = IdGenerator(start=10)
        assert [gen.next_id() for _ in range(3)] == [10, 11, 12]

    def test_default_starts_at_one(self):
        assert IdGenerator().next_id() == 1

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator(start=-1)

    def test_peek_does_not_consume(self):
        gen = IdGenerator()
        assert gen.peek() == 1
        assert gen.peek() == 1
        assert gen.next_id() == 1

    def test_reserve_block(self):
        gen = IdGenerator()
        block = gen.reserve(5)
        assert list(block) == [1, 2, 3, 4, 5]
        assert gen.next_id() == 6

    def test_reserve_zero(self):
        gen = IdGenerator()
        assert list(gen.reserve(0)) == []
        assert gen.next_id() == 1

    def test_reserve_negative_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator().reserve(-1)

    def test_bump_to(self):
        gen = IdGenerator()
        gen.bump_to(100)
        assert gen.next_id() == 100

    def test_bump_to_lower_is_noop(self):
        gen = IdGenerator(start=50)
        gen.bump_to(10)
        assert gen.next_id() == 50

    def test_thread_safety_no_duplicates(self):
        gen = IdGenerator()
        seen: list[int] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next_id() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 4000


def test_uuid_hex_unique_and_shaped():
    values = {uuid_hex() for _ in range(100)}
    assert len(values) == 100
    assert all(len(v) == 32 for v in values)


def test_short_id_prefix():
    value = short_id("ep")
    assert value.startswith("ep-")
    assert len(value) == 3 + 8

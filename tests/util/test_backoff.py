"""Decorrelated-jitter backoff: bounds, determinism, reset."""

from __future__ import annotations

import random

import pytest

from repro.util.backoff import DecorrelatedJitter, poll_cap


class TestPollCap:
    def test_small_delays_cap_at_sixteen_x(self):
        assert poll_cap(0.02) == pytest.approx(0.32)
        assert poll_cap(0.05) == pytest.approx(0.8)

    def test_cap_never_exceeds_one_second(self):
        assert poll_cap(0.5) == 1.0
        assert poll_cap(0.0625) == 1.0

    def test_cap_never_below_the_configured_delay(self):
        # A caller already polling slower than 1s keeps its own delay.
        assert poll_cap(2.0) == 2.0


class TestDecorrelatedJitter:
    def test_rejects_non_positive_base(self):
        with pytest.raises(ValueError):
            DecorrelatedJitter(0.0)
        with pytest.raises(ValueError):
            DecorrelatedJitter(-0.1)

    def test_every_draw_within_base_and_cap(self):
        jitter = DecorrelatedJitter(0.05, rng=random.Random(1))
        for _ in range(200):
            value = jitter.next()
            assert jitter.base <= value <= jitter.cap

    def test_seeded_sequences_are_deterministic(self):
        a = DecorrelatedJitter(0.02, rng=random.Random(7))
        b = DecorrelatedJitter(0.02, rng=random.Random(7))
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    def test_independent_seeds_decorrelate(self):
        a = DecorrelatedJitter(0.02, rng=random.Random(1))
        b = DecorrelatedJitter(0.02, rng=random.Random(2))
        assert [a.next() for _ in range(10)] != [b.next() for _ in range(10)]

    def test_growth_is_bounded_by_explicit_cap(self):
        jitter = DecorrelatedJitter(0.1, cap=0.25, rng=random.Random(3))
        values = [jitter.next() for _ in range(100)]
        assert max(values) <= 0.25

    def test_cap_is_raised_to_base_when_inverted(self):
        jitter = DecorrelatedJitter(0.5, cap=0.1)
        assert jitter.cap == 0.5

    def test_reset_restarts_from_base(self):
        rng = random.Random(11)
        jitter = DecorrelatedJitter(0.05, rng=rng)
        for _ in range(50):
            jitter.next()  # let the state grow toward the cap
        jitter.reset()
        # The first post-reset draw is bounded by uniform(base, 3*base).
        assert jitter.next() <= 3 * jitter.base

"""Tests for data stream ingestion and curation pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CurationPipeline,
    DataSource,
    ProvenanceLog,
    StreamIngestor,
    clip_outliers,
    debias_reporting,
    fill_missing,
    rolling_mean,
)
from repro.store import MemoryConnector, Store
from repro.util.errors import DataError, NotFoundError
from repro.util.ids import short_id


@pytest.fixture
def staging_store():
    name = short_id("staging")
    store = Store(name, MemoryConnector(name))
    yield store
    MemoryConnector.drop_space(name)


class TestDataSource:
    def test_publish_versions(self):
        source = DataSource("chicago-portal")
        v1 = source.publish("cases", [1, 2, 3])
        v2 = source.publish("cases", [1, 2, 3, 4])
        assert (v1.version, v2.version) == (1, 2)
        assert source.latest("cases").version == 2
        assert source.datasets() == ["cases"]
        assert len(source.history("cases")) == 2

    def test_identical_republish_is_noop(self):
        source = DataSource("portal")
        v1 = source.publish("cases", [1, 2])
        v2 = source.publish("cases", [1, 2])
        assert v2.version == v1.version
        assert len(source.history("cases")) == 1

    def test_unknown_dataset(self):
        with pytest.raises(NotFoundError):
            DataSource("portal").latest("nope")


class TestStreamIngestor:
    def test_poll_ingests_new_versions(self, staging_store):
        source = DataSource("portal")
        ingestor = StreamIngestor(source, staging_store)
        source.publish("cases", [5, 6])
        new = ingestor.poll()
        assert [v.key for v in new] == ["cases@v1"]
        assert ingestor.staged_payload("cases") == [5, 6]
        # Second poll with no update: nothing ingested.
        assert ingestor.poll() == []
        # Portal revises: next poll picks up v2 only.
        source.publish("cases", [5, 6, 7])
        assert [v.key for v in ingestor.poll()] == ["cases@v2"]
        assert ingestor.staged_payload("cases", version=2) == [5, 6, 7]

    def test_provenance_recorded(self, staging_store):
        source = DataSource("portal")
        provenance = ProvenanceLog()
        ingestor = StreamIngestor(source, staging_store, provenance=provenance)
        source.publish("deaths", [1])
        ingestor.poll()
        record = provenance.get("deaths@v1")
        assert record.operation == "ingest"
        assert record.params["source"] == "portal"

    def test_multiple_datasets(self, staging_store):
        source = DataSource("portal")
        ingestor = StreamIngestor(source, staging_store)
        source.publish("cases", [1])
        source.publish("hospitalizations", [2])
        keys = sorted(v.key for v in ingestor.poll())
        assert keys == ["cases@v1", "hospitalizations@v1"]

    def test_not_ingested_payload(self, staging_store):
        ingestor = StreamIngestor(DataSource("p"), staging_store)
        with pytest.raises(NotFoundError):
            ingestor.staged_payload("cases")


class TestCurationSteps:
    def test_fill_missing_interpolates(self):
        series = np.array([1.0, np.nan, 3.0, np.nan, np.nan, 6.0])
        filled = fill_missing(series)
        assert np.allclose(filled, [1, 2, 3, 4, 5, 6])

    def test_fill_missing_all_nan_rejected(self):
        with pytest.raises(DataError):
            fill_missing(np.array([np.nan, np.nan]))

    def test_fill_missing_no_nan_identity(self):
        series = np.array([1.0, 2.0])
        assert np.array_equal(fill_missing(series), series)

    def test_debias_scales(self):
        step = debias_reporting(0.25)
        assert np.allclose(step(np.array([1.0, 2.0])), [4.0, 8.0])
        with pytest.raises(ValueError):
            debias_reporting(0)

    def test_clip_outliers_caps_spike(self):
        series = np.array([10.0] * 30 + [10_000.0])
        clipped = clip_outliers(z=4.0)(series)
        assert clipped[-1] < 100
        assert np.allclose(clipped[:30], 10.0)

    def test_rolling_mean_smooths(self):
        rng = np.random.default_rng(0)
        noisy = 100 + rng.normal(0, 10, size=200)
        smoothed = rolling_mean(7)(noisy)
        assert np.std(smoothed) < np.std(noisy)
        assert np.mean(smoothed) == pytest.approx(np.mean(noisy), rel=0.02)

    def test_rolling_mean_window_validation(self):
        with pytest.raises(ValueError):
            rolling_mean(0)
        with pytest.raises(DataError):
            rolling_mean(10)(np.ones(3))


class TestCurationPipeline:
    def test_end_to_end_with_provenance(self):
        provenance = ProvenanceLog()
        provenance.record("ingest", artifact_id="cases@v1")
        pipeline = (
            CurationPipeline()
            .add(fill_missing)
            .add(clip_outliers(4.0))
            .add(debias_reporting(0.5))
            .add(rolling_mean(3))
        )
        series = np.array([10.0, np.nan, 12.0, 500.0, 11.0, 9.0, 10.0, 11.0])
        result = pipeline.run(series, provenance, "cases@v1")
        assert result.series.shape == series.shape
        assert not np.any(np.isnan(result.series))
        # Four steps -> four chained artifacts rooted at the input.
        assert len(result.artifact_ids) == 4
        lineage = provenance.lineage(result.final_artifact)
        assert [r.artifact_id for r in lineage][0] == "cases@v1"
        assert len(lineage) == 5

    def test_step_names(self):
        pipeline = CurationPipeline([fill_missing, rolling_mean(7)])
        assert pipeline.step_names == ["fill_missing", "rolling_mean(window=7)"]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(DataError):
            CurationPipeline().run(np.ones(3), ProvenanceLog(), "x")

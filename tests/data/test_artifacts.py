"""Tests for the model/algorithm artifact manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArtifactManager, ProvenanceLog
from repro.store import MemoryConnector, Store, is_resolved, register_store, unregister_store
from repro.util.errors import NotFoundError
from repro.util.ids import short_id


@pytest.fixture
def manager():
    name = short_id("ckpt-store")
    store = Store(name, MemoryConnector(name))
    register_store(store)
    yield ArtifactManager(store, provenance=ProvenanceLog())
    unregister_store(name)
    MemoryConnector.drop_space(name)


class TestArtifactManager:
    def test_save_and_load(self, manager):
        model = {"weights": list(range(10)), "kernel": "rbf"}
        record = manager.save(model, kind="gpr-model", tags={"round": 3})
        assert manager.load(record.artifact_id) == model
        assert manager.get_record(record.artifact_id).tags == {"round": 3}

    def test_stage_returns_lazy_proxy(self, manager):
        arr = np.arange(100.0)
        record = manager.save(arr, kind="me-state")
        proxy = manager.stage(record.artifact_id)
        assert not is_resolved(proxy)
        assert float(np.sum(proxy)) == float(np.sum(arr))

    def test_list_filters_by_kind_and_tags(self, manager):
        manager.save({"v": 1}, kind="gpr-model", tags={"exp": "a"})
        manager.save({"v": 2}, kind="gpr-model", tags={"exp": "b"})
        manager.save({"v": 3}, kind="me-state", tags={"exp": "a"})
        assert len(manager.list("gpr-model")) == 2
        assert len(manager.list("gpr-model", exp="a")) == 1
        assert len(manager.list()) == 3
        assert len(manager.list(exp="a")) == 2

    def test_latest_newest_first(self, manager):
        manager.save({"v": 1}, kind="gpr-model")
        second = manager.save({"v": 2}, kind="gpr-model")
        assert manager.latest("gpr-model").artifact_id == second.artifact_id

    def test_latest_missing_raises(self, manager):
        with pytest.raises(NotFoundError):
            manager.latest("nonexistent-kind")

    def test_delete(self, manager):
        record = manager.save("bytes", kind="blob")
        assert manager.delete(record.artifact_id)
        assert not manager.delete(record.artifact_id)
        with pytest.raises(NotFoundError):
            manager.load(record.artifact_id)

    def test_provenance_chain(self, manager):
        first = manager.save({"round": 1}, kind="gpr-model")
        second = manager.save(
            {"round": 2}, kind="gpr-model", parents=(first.artifact_id,)
        )
        lineage = manager._provenance.lineage(second.artifact_id)
        assert [r.artifact_id for r in lineage] == [
            first.artifact_id,
            second.artifact_id,
        ]

    def test_rerun_from_checkpoint_flow(self, manager):
        """§II-B2c: select a checkpoint, stage it, continue the run."""
        state = {"completed": 400, "best": 1.7}
        manager.save(state, kind="me-state", tags={"exp": "exp1"})
        # Later (possibly on another resource): select and resume.
        chosen = manager.latest("me-state", exp="exp1")
        resumed = manager.load(chosen.artifact_id)
        assert resumed["completed"] == 400

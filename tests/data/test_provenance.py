"""Tests for the provenance DAG."""

from __future__ import annotations

import pytest

from repro.data import ProvenanceLog
from repro.util.errors import NotFoundError


class TestProvenanceLog:
    def test_record_and_get(self):
        log = ProvenanceLog()
        record = log.record("ingest", params={"source": "portal"})
        fetched = log.get(record.artifact_id)
        assert fetched.operation == "ingest"
        assert fetched.params == {"source": "portal"}
        assert len(log) == 1

    def test_explicit_artifact_id(self):
        log = ProvenanceLog()
        record = log.record("ingest", artifact_id="cases@v1")
        assert record.artifact_id == "cases@v1"
        with pytest.raises(ValueError):
            log.record("ingest", artifact_id="cases@v1")

    def test_unknown_parent_rejected(self):
        log = ProvenanceLog()
        with pytest.raises(NotFoundError):
            log.record("derive", parents=("ghost",))

    def test_unknown_artifact(self):
        with pytest.raises(NotFoundError):
            ProvenanceLog().get("missing")

    def test_lineage_oldest_first(self):
        log = ProvenanceLog()
        raw = log.record("ingest")
        cleaned = log.record("clean", parents=(raw.artifact_id,))
        model = log.record("fit", parents=(cleaned.artifact_id,))
        lineage = log.lineage(model.artifact_id)
        assert [r.artifact_id for r in lineage] == [
            raw.artifact_id,
            cleaned.artifact_id,
            model.artifact_id,
        ]

    def test_lineage_diamond(self):
        log = ProvenanceLog()
        raw = log.record("ingest")
        a = log.record("branch-a", parents=(raw.artifact_id,))
        b = log.record("branch-b", parents=(raw.artifact_id,))
        join = log.record("merge", parents=(a.artifact_id, b.artifact_id))
        lineage = log.lineage(join.artifact_id)
        ids = [r.artifact_id for r in lineage]
        assert ids[0] == raw.artifact_id  # root first, no duplicates
        assert len(ids) == len(set(ids)) == 4

    def test_descendants(self):
        log = ProvenanceLog()
        raw = log.record("ingest")
        child = log.record("clean", parents=(raw.artifact_id,))
        grandchild = log.record("fit", parents=(child.artifact_id,))
        unrelated = log.record("ingest")
        descendant_ids = {r.artifact_id for r in log.descendants(raw.artifact_id)}
        assert descendant_ids == {child.artifact_id, grandchild.artifact_id}
        assert unrelated.artifact_id not in descendant_ids

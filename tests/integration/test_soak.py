"""Soak test: a large task volume through the full threaded stack.

2,000 tasks, four pools, durable SQLite backend — the scale knob turned
up on the real components to catch leaks, lost tasks, and ordering
corruption that small tests miss.
"""

from __future__ import annotations

import json

from repro.core import EQSQL, as_completed
from repro.db import SqliteTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool


def test_two_thousand_tasks_four_pools(tmp_path):
    eq = EQSQL(SqliteTaskStore(str(tmp_path / "soak.db")))
    n_tasks = 2000
    futures = eq.submit_tasks(
        "soak", 0, [json.dumps({"i": i}) for i in range(n_tasks)]
    )
    pools = [
        ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: {"i": d["i"], "ok": True}),
            PoolConfig(
                work_type=0, n_workers=4, batch_size=8,
                name=f"soak-{k}", poll_delay=0.002,
            ),
        ).start()
        for k in range(4)
    ]
    try:
        done = list(as_completed(futures, delay=0.005, timeout=120))
    finally:
        for pool in pools:
            pool.stop()

    assert len(done) == n_tasks
    # Every task returned its own payload (no cross-wiring).
    for future in done:
        _, result = future.result(timeout=0)
        submitted = json.loads(eq.task_info(future.eq_task_id).json_out)
        assert json.loads(result)["i"] == submitted["i"]
    # Work was actually distributed.
    completed_counts = [p.tasks_completed for p in pools]
    assert sum(completed_counts) == n_tasks
    assert sum(1 for c in completed_counts if c > 0) >= 3
    # Queues fully drained; DB consistent.
    assert eq.are_queues_empty()
    eq.close()

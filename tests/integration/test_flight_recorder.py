"""Integration: the task flight recorder end to end.

The ISSUE's acceptance path: drive a task through the full pipeline —
ME driver → TaskService → SQLite store → worker pool — with one forced
lease-expiry requeue in the middle, then reconstruct the complete
ordered lifecycle with ``python -m repro timeline``; and flag an
artificially delayed task through the live straggler detector behind
``GET /events``.
"""

from __future__ import annotations

import contextlib
import io
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import EQSQL, as_completed
from repro.core.service import TaskService
from repro.core.service_client import RemoteTaskStore
from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.me.driver import run_async_optimization
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.telemetry.journal import (
    EV_COLLECT,
    EV_ENQUEUE,
    EV_FETCH,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_RUN_END,
    EV_RUN_START,
    EV_SUBMIT,
    ROLE_DB,
    ROLE_ME,
    ROLE_POOL,
    ROLE_SERVICE,
    Journal,
    get_journal,
    load_journal,
    set_journal,
    task_timeline,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.clock import SystemClock


@pytest.fixture()
def scoped_journal(tmp_path):
    """A recording global journal with a JSONL spill, restored on exit."""
    clock = SystemClock()
    spill = str(tmp_path / "journal.jsonl")
    journal = Journal(clock=clock, spill_path=spill)
    previous = set_journal(journal)
    try:
        yield clock, journal, spill
    finally:
        journal.close()
        set_journal(previous)


def _wait_until(predicate, timeout: float = 15.0, delay: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(delay)
    return False


class TestEndToEndTimeline:
    def test_full_lifecycle_with_forced_requeue(self, scoped_journal, tmp_path):
        clock, journal, spill = scoped_journal
        registry = MetricsRegistry()
        store = SqliteTaskStore(str(tmp_path / "emews.db"))
        service = TaskService(
            store,
            port=0,
            metrics=registry,
            clock=clock,
            lease_reaper_interval=0.05,
        )
        service.start()
        host, port = service.address
        me_remote = RemoteTaskStore(host, port, metrics=registry)
        pool_remote = RemoteTaskStore(host, port, metrics=registry)
        doomed_remote = RemoteTaskStore(host, port, metrics=registry)
        eq_me = EQSQL(me_remote, clock=clock, metrics=registry)
        eq_pool = EQSQL(pool_remote, clock=clock, metrics=registry)

        result_box: dict = {}

        def drive():
            result_box["result"] = run_async_optimization(
                eq_me,
                "exp-fr",
                0,
                np.array([[1.0], [2.0], [3.0]]),
                delay=0.005,
                timeout=60.0,
            )

        driver = threading.Thread(target=drive)
        pool = None
        try:
            driver.start()
            # A doomed pool claims one task under a tiny lease and dies
            # without reporting: the reaper must requeue it.
            assert _wait_until(lambda: store.queue_out_length() >= 3)
            popped = doomed_remote.pop_out(
                0, n=1, worker_pool="doomed", now=clock.now(), lease=0.05
            )
            assert len(popped) == 1
            victim = popped[0][0]
            doomed_remote.close()
            assert _wait_until(
                lambda: any(
                    r.event == EV_REQUEUE
                    for r in journal.records(task_id=victim)
                    if r.role == ROLE_DB
                )
            )

            # A healthy pool drains everything, the victim included.
            pool = ThreadedWorkerPool(
                eq_pool,
                PythonTaskHandler(lambda d: {"y": d["x"][0] ** 2}),
                PoolConfig(
                    work_type=0, n_workers=2, batch_size=2,
                    poll_delay=0.005, lease_duration=30.0, name="pool-a",
                ),
            ).start()
            driver.join(timeout=60)
            assert not driver.is_alive()
        finally:
            if pool is not None:
                pool.stop()
            eq_me.close()
            eq_pool.close()
            service.stop()

        result = result_box["result"]
        assert sorted(result.y) == [1.0, 4.0, 9.0]

        # --- the journal holds the complete lifecycle, per role -----------
        journal.flush()
        records = load_journal(spill)
        timeline = task_timeline(records, victim)
        by_role = {}
        for r in timeline:
            by_role.setdefault(r.role, []).append(r.event)
        assert by_role[ROLE_ME] == [EV_SUBMIT, EV_COLLECT]
        assert by_role[ROLE_DB] == [
            EV_ENQUEUE, EV_POP, EV_REQUEUE, EV_POP, EV_REPORT,
        ]
        assert by_role[ROLE_POOL] == [
            EV_FETCH, EV_RUN_START, EV_RUN_END, EV_REPORT,
        ]
        # The service observed the RPC hops it proxied (the requeue came
        # from the in-process reaper, which talks to the store directly,
        # so only the db role records it).
        assert EV_ENQUEUE in by_role[ROLE_SERVICE]
        assert EV_POP in by_role[ROLE_SERVICE]
        assert EV_REPORT in by_role[ROLE_SERVICE]
        # Causal endpoints of the merged view.
        assert timeline[0].event == EV_SUBMIT
        assert timeline[-1].event == EV_COLLECT
        # The doomed and healthy pops are attributed to their pools.
        db_pops = [
            r for r in timeline if r.role == ROLE_DB and r.event == EV_POP
        ]
        assert [r.source for r in db_pops] == ["doomed", "pool-a"]
        # The ME's submit carries the run's trace id end to end.
        assert timeline[0].trace_id == ""  # tracer disabled by default

        # --- and `repro timeline` renders it ------------------------------
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(["timeline", str(victim), "--journal", spill])
        assert rc == 0
        out = buf.getvalue()
        assert f"task {victim}:" in out
        for event in (EV_SUBMIT, EV_ENQUEUE, EV_REQUEUE, EV_RUN_START,
                      EV_REPORT, EV_COLLECT):
            assert event in out
        assert out.index("submit") < out.index("enqueue")
        assert out.index("requeue") < out.index("run_start")


class TestLiveStragglerDetection:
    def test_delayed_task_flagged_via_events(self, tmp_path):
        clock = SystemClock()
        journal = Journal(clock=clock)
        previous = set_journal(journal)
        registry = MetricsRegistry()
        service = TaskService(
            MemoryTaskStore(),
            port=0,
            status_port=0,
            metrics=registry,
            clock=clock,
            straggler_multiple=3.0,
            straggler_min_seconds=0.2,
        )
        service.start()
        host, port = service.address
        remote = RemoteTaskStore(host, port, metrics=registry)
        eq = EQSQL(remote, clock=clock, metrics=registry)

        def handler(d):
            time.sleep(d.get("sleep", 0.0))
            return {"y": 0.0}

        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(handler),
            PoolConfig(work_type=0, n_workers=2, batch_size=2,
                       poll_delay=0.005, name="p1"),
        ).start()
        try:
            # Six fast tasks build the run-duration baseline.
            fast = eq.submit_tasks("exp", 0, [json.dumps({})] * 6)
            assert len(list(as_completed(fast, timeout=30, delay=0.005))) == 6

            # One artificially delayed task must get flagged while running.
            (slow,) = eq.submit_tasks("exp", 0, [json.dumps({"sleep": 3.0})])

            def flagged():
                with urllib.request.urlopen(
                    service.status_url + "/events", timeout=5
                ) as r:
                    events = json.loads(r.read().decode())
                active = events.get("stragglers", {}).get("active", [])
                return any(
                    f["task_id"] == slow.eq_task_id and f["phase"] == "run"
                    for f in active
                )

            assert _wait_until(flagged, timeout=10.0, delay=0.05)

            # The /status document carries the same summary section.
            status = service.status_snapshot()
            assert status["stragglers"]["flagged_total"] >= 1
            assert registry.get("stragglers.active").value >= 1
            assert registry.get("stragglers.flagged_total").value >= 1

            # `repro stragglers --once --json` sees it over HTTP too.
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = cli_main(
                    ["stragglers", service.status_url, "--once", "--json"]
                )
            assert rc == 0
            payload = json.loads(buf.getvalue())
            assert payload["journal"]["enabled"] is True
            assert any(
                f["task_id"] == slow.eq_task_id
                for f in payload["stragglers"]["active"]
            )

            assert list(as_completed([slow], timeout=30, delay=0.01))
        finally:
            pool.stop()
            eq.close()
            service.stop()
            set_journal(previous)

"""Chaos integration: the full pipeline survives injected faults.

The headline guarantee (paper §IV-B): tasks and results are not lost
when resources fail.  These tests run the real ME → service → pool
pipeline with faults injected at two layers — a chaos TCP proxy
severing connections under the RPC clients, and a flaky store faulting
pool-side operations — plus a mid-batch pool kill, and assert the
workflow still drains with every result delivered exactly once and no
manual ``recover_pool`` call anywhere.

Marked ``chaos`` so CI can run them as a dedicated step:
``pytest -m chaos``.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.core import EQSQL, LeaseReaper, RemoteTaskStore, TaskService
from repro.core.constants import TaskStatus
from repro.core.futures import as_completed
from repro.core.service_client import RetryPolicy
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.testing import ChaosProxy, FlakyTaskStore

pytestmark = pytest.mark.chaos

RETRY = RetryPolicy(max_attempts=12, base_delay=0.02, max_delay=0.25)


def square(d):
    time.sleep(0.02)
    return {"y": d["x"] ** 2}


def leased_pool(eq, name, n_workers=4, lease=1.0):
    return ThreadedWorkerPool(
        eq,
        PythonTaskHandler(square),
        PoolConfig(
            work_type=0,
            n_workers=n_workers,
            batch_size=n_workers * 2,
            threshold=1,
            name=name,
            poll_delay=0.005,
            lease_duration=lease,
        ),
    )


class TestProxyChaos:
    def test_workflow_drains_under_severed_connections_and_pool_kill(self):
        """Kill the pool mid-batch, sever every connection repeatedly:
        all results arrive exactly once, recovery is fully automatic."""
        n_tasks = 24
        rng = random.Random(2023)
        backing = MemoryTaskStore()
        service = TaskService(backing, lease_reaper_interval=0.1).start()
        proxy = ChaosProxy(*service.address, rng=rng).start()
        me_store = RemoteTaskStore(*proxy.address, retry=RETRY, rng=rng)
        pool_store = RemoteTaskStore(*proxy.address, retry=RETRY, rng=rng)
        me = EQSQL(me_store)
        pools = [leased_pool(EQSQL(pool_store), "chaos-1")]
        try:
            # Submission runs clean — create_tasks is non-idempotent and
            # an ME would not blind-retry it; chaos covers everything
            # downstream (claim, execute, report, collect).
            futures = me.submit_tasks(
                "chaos", 0, [json.dumps({"x": x}) for x in range(n_tasks)]
            )
            task_ids = [f.eq_task_id for f in futures]
            pools[0].start()
            proxy.set_sever_rate(0.02)

            killed = False
            deadline = time.monotonic() + 60.0
            next_storm = time.monotonic() + 0.3
            while True:
                statuses = me.query_status(task_ids)
                n_complete = sum(
                    1 for _, s in statuses if s == TaskStatus.COMPLETE
                )
                if n_complete == n_tasks:
                    break
                assert time.monotonic() < deadline, (
                    f"workflow stalled at {n_complete}/{n_tasks}"
                )
                if not killed and n_complete >= n_tasks // 3:
                    # Abandon the first pool mid-batch; its claimed
                    # tasks must flow back via the lease reaper alone.
                    pools[0].stop(drain=False, timeout=10)
                    killed = True
                    replacement = leased_pool(EQSQL(me_store), "chaos-2")
                    pools.append(replacement)
                    replacement.start()
                if time.monotonic() >= next_storm:
                    proxy.sever_all()
                    next_storm = time.monotonic() + 0.3
                time.sleep(0.02)

            assert killed, "pool was never killed mid-batch"
            # Collect with chaos off: pop_in consumes results, the one
            # step retry deliberately does not cover.
            proxy.set_sever_rate(0.0)
            results = me.store.pop_in_any(task_ids)
            got = [tid for tid, _ in results]
            assert sorted(got) == sorted(task_ids), "results lost"
            assert len(got) == len(set(got)), "results duplicated"
            for tid, payload in results:
                x = json.loads(backing.get_task(tid).json_out)["x"]
                assert json.loads(payload) == {"y": x**2}
            # The chaos actually happened.
            assert proxy.connections_severed > 0
            # Nothing left behind: queues empty, no task stuck RUNNING.
            assert backing.queue_in_length() == 0
            assert backing.queue_out_length() == 0
        finally:
            for pool in pools:
                pool.stop(drain=False, timeout=5)
            me_store.close()
            pool_store.close()
            proxy.stop()
            service.stop()
            backing.close()


class TestSeverMidWait:
    def test_blocked_wait_survives_severed_connection(self):
        """Sever the proxy while a ``pop_out`` long-poll is parked
        server-side: the client's wait channel reconnects and re-issues
        the wait, and the eventual task is claimed exactly once.

        The fetcher idiom is re-issue-until-claimed: each empty wait
        (server cap, shutdown wake) just loops.  The sever leaves a
        *stale* handler thread parked in the backend whose response can
        only go to a dead socket; ``wake_waiters`` flushes it — its
        empty reply is lost with its connection — before the task is
        published, proving the reconnected wait is the one that claims.
        """
        backing = MemoryTaskStore()
        service = TaskService(backing).start()
        proxy = ChaosProxy(*service.address, rng=random.Random(7)).start()
        store = RemoteTaskStore(*proxy.address, retry=RETRY)
        popped: list[list[tuple[int, str]]] = []

        def fetch_until_claimed() -> None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                got = store.pop_out(0, n=1, worker_pool="w", now=1.0, wait=5.0)
                if got:
                    popped.append(got)
                    return

        def parked_waiters() -> int:
            return service.status_snapshot()["service"]["waiters"]

        try:
            waiter = threading.Thread(target=fetch_until_claimed)
            waiter.start()
            # Wait until the RPC is parked in the service's long-poll.
            deadline = time.monotonic() + 5.0
            while parked_waiters() < 1:
                assert time.monotonic() < deadline, "wait RPC never parked"
                time.sleep(0.005)

            assert proxy.sever_all() >= 1
            # Flush the stale handler (it returns empty into its dead
            # socket and exits) and give the client time to reconnect
            # and re-issue; an in-flight re-issue just loops on empty.
            backing.wake_waiters()
            time.sleep(0.3)
            [tid] = backing.create_tasks(
                "sever", 0, [json.dumps({"x": 3})], time_created=1.0
            )
            waiter.join(timeout=15.0)
            assert not waiter.is_alive(), "waiter never returned"

            # Exactly once: one claim, by the reconnected wait.
            assert popped == [[(tid, json.dumps({"x": 3}))]]
            assert backing.get_task(tid).eq_status == TaskStatus.RUNNING
            assert backing.queue_out_length() == 0
            assert proxy.connections_severed >= 1
            assert parked_waiters() == 0
        finally:
            store.close()
            proxy.stop()
            service.stop()
            backing.close()


class TestFlakyStoreChaos:
    def test_workflow_drains_with_faulty_pool_operations(self):
        """Every pool-side store call can fault before or after applying;
        leases plus idempotent reports still deliver everything once."""
        n_tasks = 20
        inner = MemoryTaskStore()
        flaky = FlakyTaskStore(
            inner,
            failure_rate=0.25,
            lost_response_rate=0.5,
            methods={"pop_out", "report", "renew_leases"},
            rng=random.Random(99),
        )
        me = EQSQL(inner)  # the ME talks to the healthy store
        pool_eq = EQSQL(flaky)  # the pool's connection is the flaky one
        futures = me.submit_tasks(
            "flaky", 0, [json.dumps({"x": x}) for x in range(n_tasks)]
        )
        pool = leased_pool(pool_eq, "flaky-pool", lease=0.3)
        with LeaseReaper(inner, interval=0.05), pool:
            done = list(as_completed(futures, timeout=60, delay=0.02))
        assert len(done) == n_tasks
        for f in done:
            _, payload = f.result(timeout=0)
            x = json.loads(inner.get_task(f.eq_task_id).json_out)["x"]
            assert json.loads(payload) == {"y": x**2}
        # The chaos actually happened, and nothing was left behind.
        assert sum(flaky.faults_injected.values()) > 0
        assert inner.queue_in_length() == 0
        assert inner.queue_out_length() == 0
        inner.close()

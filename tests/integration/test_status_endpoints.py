"""Live TaskService monitoring: all four HTTP routes plus the CLI view.

The ISSUE's acceptance path: start a service with an embedded status
server, hit ``/healthz``, ``/readyz``, ``/metrics``, ``/status`` over
real HTTP while real RPC traffic flows, and round-trip
``repro monitor --once --json`` against it.
"""

from __future__ import annotations

import contextlib
import io
import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.service import TaskService
from repro.core.service_client import RemoteTaskStore
from repro.db import MemoryTaskStore
from repro.telemetry.metrics import MetricsRegistry


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5) as r:
        return r.status, r.headers["Content-Type"], r.read().decode()


@pytest.fixture()
def live_service():
    registry = MetricsRegistry()
    store = MemoryTaskStore(metrics=registry)
    service = TaskService(
        store,
        port=0,
        status_port=0,
        metrics=registry,
        lease_reaper_interval=0.2,
        sampler_interval=0.05,
    )
    service.start()
    host, port = service.address
    remote = RemoteTaskStore(host, port, metrics=registry)
    try:
        yield service, remote, registry
    finally:
        remote.close()
        service.stop()


class TestEndpointsAgainstLiveService:
    def test_all_four_routes(self, live_service):
        service, remote, _ = live_service
        remote.create_tasks("exp", 0, ["{}"] * 3)
        remote.pop_out(0, n=1, now=0.0, lease=30.0)
        base = service.status_url

        code, ctype, body = fetch(base + "/healthz")
        assert code == 200 and json.loads(body)["ok"] is True

        code, _, body = fetch(base + "/readyz")
        ready = json.loads(body)
        assert code == 200 and ready["ok"] is True
        assert ready["checks"]["store"]["ok"] is True
        assert ready["checks"]["reaper"]["ok"] is True

        code, ctype, body = fetch(base + "/metrics")
        assert code == 200
        assert "version=0.0.4" in ctype
        # RPC traffic above must be visible in the scrape.
        assert "service_requests_total" in body
        assert "service_requests_create_tasks_total 1" in body
        assert "service_requests_pop_out_total 1" in body
        assert "service_bytes_received_total" in body

        code, _, body = fetch(base + "/status")
        status = json.loads(body)
        assert code == 200
        assert status["store"]["tasks"]["queued"] == 2
        assert status["store"]["tasks"]["running"] == 1
        assert status["store"]["leases"]["active"] == 1
        assert status["service"]["requests"] >= 2
        assert status["service"]["bytes_received"] > 0
        assert status["service"]["bytes_sent"] > 0
        assert status["service"]["reaper"]["running"] is True

    def test_stats_rpc_round_trips_through_client(self, live_service):
        _, remote, _ = live_service
        remote.create_tasks("exp", 3, ["{}"] * 4)
        stats = remote.stats()
        # JSON wire format: queue_out keyed by *string* work type.
        assert stats["queue_out"] == {"3": 4}
        assert stats["tasks"]["queued"] == 4
        assert stats["queue_out_total"] == 4

    def test_sampler_populates_gauges(self, live_service):
        import time

        service, remote, registry = live_service
        remote.create_tasks("exp", 0, ["{}"] * 7)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            gauge = registry.get("store.queue_out_depth")
            if gauge is not None and gauge.value == 7:
                break
            time.sleep(0.02)
        assert registry.get("store.queue_out_depth").value == 7
        assert registry.get("store.tasks.queued").value == 7

    def test_monitor_once_json_round_trips(self, live_service):
        service, remote, _ = live_service
        remote.create_tasks("exp", 0, ["{}"] * 2)
        host, port = service.status_address
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(["monitor", f"{host}:{port}", "--once", "--json"])
        assert rc == 0
        payload = json.loads(buf.getvalue())
        assert payload["store"]["tasks"]["queued"] == 2
        assert payload["service"]["uptime_seconds"] >= 0

    def test_monitor_once_table_renders(self, live_service):
        service, _, _ = live_service
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(["monitor", service.status_url, "--once"])
        assert rc == 0
        out = buf.getvalue()
        assert "queue" in out and "leases" in out

    def test_monitor_unreachable_target_exits_nonzero(self):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            # Port 1 is essentially never listening.
            rc = cli_main(["monitor", "127.0.0.1:1", "--once", "--json"])
        assert rc == 1


class TestReadinessDegradation:
    def test_readyz_503_when_store_breaks(self):
        registry = MetricsRegistry()
        store = MemoryTaskStore()
        service = TaskService(store, port=0, status_port=0, metrics=registry)
        service.start()
        try:
            # Sever the store underneath the service: readiness must flip.
            def broken(*a, **k):
                raise RuntimeError("db gone")

            store.queue_in_length = broken
            code = None
            try:
                urllib.request.urlopen(service.status_url + "/readyz", timeout=5)
            except urllib.error.HTTPError as exc:
                code = exc.code
                body = json.loads(exc.read().decode())
            assert code == 503
            assert body["checks"]["store"]["ok"] is False
        finally:
            service.stop()

    def test_no_status_server_by_default(self):
        service = TaskService(MemoryTaskStore(), port=0)
        service.start()
        try:
            assert service.status_address is None
            assert service.status_url is None
        finally:
            service.stop()

"""Fleet telemetry against a live TaskService.

The ISSUE's acceptance path: two worker pools push telemetry to a real
service over RPC, ``/fleet`` shows both with profiles aggregated; one
pool dies and the registry marks it stale then drops it — along with
its labelled ``/metrics`` series — within the expiry window; and
``repro fleet --once --json`` round-trips the registry state.
"""

from __future__ import annotations

import contextlib
import io
import json
import time
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core import EQSQL, as_completed
from repro.core.service import TaskService
from repro.core.service_client import RemoteTaskStore
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.telemetry.metrics import MetricsRegistry

#: Heartbeat period for test pools — fast, so expiry tests stay quick.
BEAT = 0.05


def fetch_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=5) as r:
        return json.loads(r.read().decode())


def fetch_text(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as r:
        return r.read().decode()


def wait_until(predicate, timeout: float = 10.0, delay: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(delay)
    return False


def pool_config(name: str, **overrides) -> PoolConfig:
    defaults = dict(
        name=name,
        work_type=0,
        n_workers=2,
        batch_size=4,
        poll_delay=0.001,
        profile_tasks=True,
        telemetry_interval=BEAT,
    )
    defaults.update(overrides)
    return PoolConfig(**defaults)


@pytest.fixture()
def live_service():
    registry = MetricsRegistry()
    store = MemoryTaskStore(metrics=registry)
    service = TaskService(
        store,
        port=0,
        status_port=0,
        metrics=registry,
        fleet_stale_multiple=2.0,
        fleet_expiry_multiple=4.0,
        fleet_default_interval=BEAT,
    )
    service.start()
    host, port = service.address
    try:
        yield service, (host, port)
    finally:
        service.stop()


class TestFleetOverLiveService:
    def test_two_pools_push_and_one_expires(self, live_service):
        service, (host, port) = live_service
        base = service.status_url

        store_a = RemoteTaskStore(host, port)
        store_b = RemoteTaskStore(host, port)
        eq_a, eq_b = EQSQL(store_a), EQSQL(store_b)
        pool_a = ThreadedWorkerPool(
            eq_a, PythonTaskHandler(lambda d: d), pool_config("pool-a")
        ).start()
        pool_b = ThreadedWorkerPool(
            eq_b, PythonTaskHandler(lambda d: d), pool_config("pool-b")
        ).start()
        try:
            futures = eq_a.submit_tasks("exp", 0, ["{}"] * 12)
            done = list(as_completed(futures, delay=0.001, timeout=30))
            assert len(done) == 12

            # Both pools must appear live on /fleet once they have beat.
            def both_live():
                snap = fetch_json(base + "/fleet")
                by_id = {w["worker_id"]: w for w in snap["workers"]}
                return (
                    by_id.get("pool-a", {}).get("state") == "live"
                    and by_id.get("pool-b", {}).get("state") == "live"
                )

            assert wait_until(both_live), fetch_json(base + "/fleet")

            snap = fetch_json(base + "/fleet")
            assert snap["counts"]["total"] == 2
            by_id = {w["worker_id"]: w for w in snap["workers"]}
            assert by_id["pool-a"]["role"] == "pool"
            assert by_id["pool-a"]["n_workers"] == 2
            # Task profiles flowed through reports into the aggregates.
            assert snap["profiles"]["0"]["count"] >= 12
            assert snap["profiles"]["0"]["wall_p95_seconds"] >= 0.0
            assert snap["top_cpu"]

            # Labelled series for both pools on /metrics.
            metrics = fetch_text(base + "/metrics")
            assert 'repro_fleet_worker_up{worker="pool-a",role="pool"} 1' in metrics
            assert 'repro_fleet_worker_up{worker="pool-b",role="pool"} 1' in metrics

            # Kill pool B: no more heartbeats after the parting beat.
            pool_b.stop()
            eq_b.close()

            # Within expiry_multiple x interval (plus slack) the worker
            # must leave /fleet entirely and its series must vanish.
            def b_expired():
                snap = fetch_json(base + "/fleet")
                return all(w["worker_id"] != "pool-b" for w in snap["workers"])

            assert wait_until(b_expired), fetch_json(base + "/fleet")
            metrics = fetch_text(base + "/metrics")
            assert 'worker="pool-b"' not in metrics
            assert 'repro_fleet_worker_up{worker="pool-a",role="pool"} 1' in metrics
        finally:
            pool_a.stop()
            with contextlib.suppress(Exception):
                pool_b.stop()
            eq_a.close()
            with contextlib.suppress(Exception):
                eq_b.close()

    def test_status_carries_fleet_summary(self, live_service):
        service, (host, port) = live_service
        store = RemoteTaskStore(host, port)
        eq = EQSQL(store)
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), pool_config("pool-s")
        ).start()
        try:
            assert wait_until(
                lambda: fetch_json(service.status_url + "/status")
                .get("fleet", {})
                .get("live", 0)
                >= 1
            )
            status = fetch_json(service.status_url + "/status")
            assert status["fleet"]["workers"] >= 1
        finally:
            pool.stop()
            eq.close()

    def test_fleet_cli_once_json_round_trips(self, live_service):
        service, (host, port) = live_service
        store = RemoteTaskStore(host, port)
        eq = EQSQL(store)
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), pool_config("pool-cli")
        ).start()
        try:
            futures = eq.submit_tasks("exp", 0, ["{}"] * 4)
            list(as_completed(futures, delay=0.001, timeout=30))
            assert wait_until(
                lambda: fetch_json(service.status_url + "/fleet")["counts"]["total"]
                >= 1
            )
            hoststr, portnum = service.status_address
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = cli_main(["fleet", f"{hoststr}:{portnum}", "--once", "--json"])
            assert rc == 0
            payload = json.loads(buf.getvalue())
            assert payload["counts"]["total"] >= 1
            assert any(w["worker_id"] == "pool-cli" for w in payload["workers"])
            assert payload["profiles"]["0"]["count"] >= 4
        finally:
            pool.stop()
            eq.close()

    def test_fleet_cli_once_table_renders(self, live_service):
        service, (host, port) = live_service
        store = RemoteTaskStore(host, port)
        eq = EQSQL(store)
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), pool_config("pool-t")
        ).start()
        try:
            assert wait_until(
                lambda: fetch_json(service.status_url + "/fleet")["counts"]["total"]
                >= 1
            )
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = cli_main(["fleet", service.status_url, "--once"])
            assert rc == 0
            out = buf.getvalue()
            assert "pool-t" in out
            assert "live" in out
        finally:
            pool.stop()
            eq.close()

    def test_profiles_flow_without_push_telemetry(self, live_service):
        # Profiling on, push telemetry off: the report path alone must
        # still fill the per-work-type aggregate tables.
        service, (host, port) = live_service
        store = RemoteTaskStore(host, port)
        eq = EQSQL(store)
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: d),
            pool_config("pool-np", telemetry_interval=None),
        ).start()
        try:
            futures = eq.submit_tasks("exp", 0, ["{}"] * 6)
            done = list(as_completed(futures, delay=0.001, timeout=30))
            assert len(done) == 6
            assert wait_until(
                lambda: fetch_json(service.status_url + "/fleet")["profiles"]
                .get("0", {})
                .get("count", 0)
                >= 6
            )
            snap = fetch_json(service.status_url + "/fleet")
            # No pushes: the pool never registers as a fleet worker.
            assert all(w["worker_id"] != "pool-np" for w in snap["workers"])
        finally:
            pool.stop()
            eq.close()


class TestInProcessStoreDegradesGracefully:
    def test_pool_without_telemetry_sink_still_works(self):
        # In-process store has no ``telemetry`` RPC: the pool must log
        # and run without a pusher rather than fail.
        eq = EQSQL(MemoryTaskStore())
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), pool_config("pool-local")
        ).start()
        try:
            assert pool.telemetry_pusher is None
            futures = eq.submit_tasks("exp", 0, ["{}"] * 4)
            done = list(as_completed(futures, delay=0.001, timeout=30))
            assert len(done) == 4
        finally:
            pool.stop()
            eq.close()

"""Integration: the data-to-decision pipeline OSPREY exists for.

Synthetic portal → ingestion (provenance) → curation → calibration over
a worker pool → model publication with validation → multi-resolution
ensemble forecast and particle-filter assimilation on the same stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQSQL
from repro.data import (
    ArtifactManager,
    CurationPipeline,
    DataSource,
    ProvenanceLog,
    StreamIngestor,
    clip_outliers,
    fill_missing,
    rolling_mean,
)
from repro.db import MemoryTaskStore
from repro.epi import (
    CalibrationProblem,
    MultiResolutionEnsemble,
    ParticleFilter,
    ParticleFilterConfig,
    SEIRParams,
    SurveillanceModel,
    generate_surveillance,
    simulate_seir,
)
from repro.me import latin_hypercube, run_async_optimization
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.sde import ModelRegistry
from repro.store import MemoryConnector, Store, register_store, unregister_store
from repro.util.ids import short_id

TRUE = SEIRParams(beta=0.55, sigma=0.25, gamma=0.22, population=50_000)
DAYS = 80
SURVEILLANCE = SurveillanceModel(reporting_rate=0.3, delay_mean=2.0)


def true_daily_incidence():
    result = simulate_seir(TRUE, initial_infected=5, t_end=float(DAYS), dt=0.25)
    return result.incidence[1:].reshape(DAYS, 4).sum(axis=1)


# Module-level so the registry can reference it by import path.
_PUBLISHED_PROBLEM: dict = {}


def calibrated_model_fn(payload):
    problem: CalibrationProblem = _PUBLISHED_PROBLEM["problem"]
    return {"loss": problem.loss(np.asarray(payload["theta"]))}


@pytest.fixture
def staging():
    name = short_id("staging")
    store = Store(name, MemoryConnector(name))
    register_store(store)
    yield store
    unregister_store(name)
    MemoryConnector.drop_space(name)


def test_data_to_decision_pipeline(staging):
    # --- 1. publish + ingest + curate ---------------------------------------
    rng = np.random.default_rng(17)
    observed_raw = generate_surveillance(true_daily_incidence(), SURVEILLANCE, rng)
    observed_raw[30] = np.nan
    observed_raw[55] *= 15

    portal = DataSource("portal")
    portal.publish("cases", observed_raw)
    provenance = ProvenanceLog()
    ingestor = StreamIngestor(portal, staging, provenance=provenance)
    (version,) = ingestor.poll()

    curated = CurationPipeline(
        [fill_missing, clip_outliers(4.0), rolling_mean(5)]
    ).run(np.asarray(ingestor.staged_payload("cases"), dtype=float), provenance, version.key)
    assert not np.any(np.isnan(curated.series))
    assert len(provenance.lineage(curated.final_artifact)) == 4

    # --- 2. calibrate over a worker pool ---------------------------------------
    problem = CalibrationProblem(
        observed=curated.series,
        population=TRUE.population,
        surveillance=SURVEILLANCE,
        initial_infected=5,
    )
    eq = EQSQL(MemoryTaskStore())
    pool = ThreadedWorkerPool(
        eq, PythonTaskHandler(problem.task_function),
        PoolConfig(work_type=0, n_workers=4),
    ).start()
    samples = latin_hypercube(np.random.default_rng(3), 60, problem.bounds)
    result = run_async_optimization(
        eq, "calib", 0, samples, batch_completed=20, timeout=120
    )
    pool.stop()
    eq.close()
    assert len(result.y) == 60
    best_theta = result.best_x
    # The calibrated loss beats the sample median comfortably.
    assert result.best_y < np.median(result.y) / 2

    # --- 3. checkpoint + publish with validation --------------------------------
    artifacts = ArtifactManager(staging, provenance=provenance)
    checkpoint = artifacts.save(
        {"theta": list(map(float, best_theta)), "loss": result.best_y},
        kind="calibrated-params",
        tags={"exp": "calib"},
        parents=(curated.final_artifact,),
    )
    assert artifacts.latest("calibrated-params").artifact_id == checkpoint.artifact_id

    _PUBLISHED_PROBLEM["problem"] = problem
    registry = ModelRegistry()
    registry.publish(
        "seir-county", "1.0", calibrated_model_fn,
        cases=[
            (
                "best-theta",
                {"theta": list(map(float, best_theta))},
                {"loss": float(result.best_y)},
            )
        ],
        rtol=1e-9,
    )
    assert registry.validate("seir-county").passed

    # --- 4. decision products: ensemble forecast + assimilation -----------------
    def ode_member(days):
        beta, sigma, gamma = best_theta
        params = SEIRParams(beta=beta, sigma=sigma, gamma=gamma, population=TRUE.population)
        run = simulate_seir(params, initial_infected=5, t_end=float(days), dt=0.5)
        daily = run.incidence[1:].reshape(days, 2).sum(axis=1)
        return daily * SURVEILLANCE.reporting_rate

    def persistence_member(days):
        last = float(curated.series[-1])
        fit = np.asarray(curated.series[: days - 14]) if days > 14 else np.full(days, last)
        return np.concatenate([fit, np.full(days - fit.shape[0], last)])

    ensemble = (
        MultiResolutionEnsemble()
        .add_member("calibrated-ode", ode_member)
        .add_member("persistence", persistence_member)
    )
    forecast = ensemble.forecast(curated.series, horizon=14)
    assert forecast.mean.shape == (14,)
    assert np.all(forecast.lower <= forecast.upper)

    pf = ParticleFilter(
        ParticleFilterConfig(
            n_particles=300,
            population=int(TRUE.population),
            sigma=0.25,
            gamma=0.22,
            reporting_rate=0.3,
            initial_infected=5,
        ),
        np.random.default_rng(8),
    )
    steps = pf.run(np.asarray(observed_raw_clean := np.nan_to_num(observed_raw)))
    assert len(steps) == DAYS
    beta_mean, beta_std = pf.beta_posterior()
    assert 0.2 < beta_mean < 1.2
    assert np.all(pf.forecast(7) >= 0)

"""Integration: the paper's §VI workflow end-to-end at test scale.

Real threads, real TCP, real fabric: a client starts the EMEWS DB,
service, and a worker pool remotely; the local ME algorithm drives
Ackley evaluations through the service; GPR retraining runs on a second
endpoint with the model passed as a store proxy; a second pool joins
mid-run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EQSQL, RemoteTaskStore, as_completed, update_priority
from repro.fabric import CloudBroker, Endpoint, FabricClient, LocalProvider
from repro.me import GaussianProcessRegressor, ackley, ranks_to_priorities, uniform_random
from repro.pools import lifecycle
from repro.store import MemoryConnector, Store, extract, register_store, unregister_store
from repro.util.ids import short_id

WORK_TYPE = 0


def ackley_task(params):
    return {"y": float(ackley(params["x"]))}


def retrain_and_rank(gpr_proxy, X_done, y_done, X_remaining):
    gpr = extract(gpr_proxy)
    gpr.fit(np.asarray(X_done), np.asarray(y_done))
    predicted = gpr.predict(np.asarray(X_remaining))
    return [int(p) for p in ranks_to_priorities(np.asarray(predicted))]


@pytest.fixture
def federation():
    broker = CloudBroker()
    bebop = Endpoint(broker, "bebop", "tok", provider=LocalProvider(4)).start()
    theta = Endpoint(broker, "theta", "tok", provider=LocalProvider(2)).start()
    client = FabricClient(broker, "tok")
    store_name = short_id("gpr-store")
    store = Store(store_name, MemoryConnector(store_name))
    register_store(store)
    yield client, bebop, theta, store
    lifecycle.shutdown_site()
    bebop.stop()
    theta.stop()
    unregister_store(store_name)
    MemoryConnector.drop_space(store_name)


def test_full_federated_optimization(federation):
    client, bebop, theta, store = federation
    db_name = short_id("db")

    # 1. Remote setup through the fabric (§VI paragraph 2).
    client.run(lifecycle.start_emews_db, db_name, endpoint=bebop.endpoint_id, timeout=30)
    host, port = client.run(
        lifecycle.start_emews_service, db_name, endpoint=bebop.endpoint_id, timeout=30
    )
    pool1 = short_id("pool")
    client.run(
        lifecycle.start_worker_pool, db_name, pool1, WORK_TYPE, ackley_task,
        endpoint=bebop.endpoint_id, n_workers=3, timeout=30,
    )

    # 2. Local ME over the TCP service.
    remote = RemoteTaskStore(host, int(port))
    eq = EQSQL(remote)
    n_points, batch = 40, 10
    points = uniform_random(np.random.default_rng(0), n_points, [(-20, 20)] * 3)
    futures = eq.submit_tasks(
        "integration-exp", WORK_TYPE,
        [json.dumps({"x": list(map(float, p))}) for p in points],
    )
    point_of = {f.eq_task_id: i for i, f in enumerate(futures)}
    gpr_proxy = store.proxy(GaussianProcessRegressor(optimize_hyperparameters=False))

    pending = list(futures)
    done_X, done_y = [], []
    repri_rounds = 0
    second_pool_started = False
    while pending:
        want = min(batch, len(pending))
        for future in as_completed(pending, pop=True, n=want, delay=0.01, timeout=60):
            _, payload = future.result(timeout=0)
            done_X.append(list(points[point_of[future.eq_task_id]]))
            done_y.append(json.loads(payload)["y"])
        if not pending:
            break
        # 3. Remote GPR retraining on theta, model shipped by proxy.
        priorities = client.run(
            retrain_and_rank, gpr_proxy,
            done_X, done_y,
            [list(points[point_of[f.eq_task_id]]) for f in pending],
            endpoint=theta.endpoint_id, timeout=60,
        )
        update_priority(pending, priorities)
        repri_rounds += 1
        if not second_pool_started:
            # 4. A second pool joins mid-run (Fig 4's dynamic scaling).
            client.run(
                lifecycle.start_worker_pool, db_name, short_id("pool"), WORK_TYPE,
                ackley_task, endpoint=bebop.endpoint_id, n_workers=3, timeout=30,
            )
            second_pool_started = True

    # Everything completed, reprioritization actually ran, values match.
    assert len(done_y) == n_points
    assert repri_rounds >= 2
    best = float(np.min(done_y))
    assert best == pytest.approx(
        float(np.min(np.asarray(ackley(points)))), rel=1e-9
    )
    # The DB recorded pool attribution for every task.
    pools_used = {eq.task_info(f.eq_task_id).worker_pool for f in futures}
    assert len(pools_used) >= 1
    remote.close()

"""Integration: the platform's fault-tolerance story end to end.

Three failure modes the paper's architecture must absorb:
1. a worker pool dies mid-run — its tasks are recovered and re-executed;
2. a fabric endpoint goes offline — queued tasks are delivered when it
   returns (fire-and-forget);
3. the database survives a 'process restart' (durable SQLite file) with
   queued work intact.
"""

from __future__ import annotations

import json

from repro.core import EQSQL, as_completed
from repro.core.recovery import recover_pool
from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.fabric import CloudBroker, Endpoint, FabricClient, FabricTaskState
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool


def slow_square(d):
    import time

    time.sleep(0.05)
    return {"y": d["x"] ** 2}


def fast_square(d):
    return {"y": d["x"] ** 2}


class TestPoolCrashRecovery:
    def test_abandoned_tasks_recovered_and_completed(self):
        eq = EQSQL(MemoryTaskStore())
        futures = eq.submit_tasks(
            "exp", 0, [json.dumps({"x": i}) for i in range(12)]
        )
        # A pool claims work then "crashes" (abort: abandons owned tasks).
        doomed = ThreadedWorkerPool(
            eq, PythonTaskHandler(slow_square),
            PoolConfig(work_type=0, n_workers=2, batch_size=6, name="doomed"),
        ).start()
        # Let it claim a batch, then kill it without draining.
        while doomed.owned() == 0:
            eq.clock.sleep(0.005)
        doomed.stop(drain=False, timeout=10)

        # Some tasks are stuck RUNNING under the dead pool's name.
        recovered = recover_pool(eq, "exp", "doomed")
        assert recovered >= 1

        # A replacement pool finishes everything.
        replacement = ThreadedWorkerPool(
            eq, PythonTaskHandler(fast_square),
            PoolConfig(work_type=0, n_workers=3, name="replacement"),
        ).start()
        done = list(as_completed(futures, timeout=30, delay=0.01))
        replacement.stop()
        assert len(done) == 12
        for f in done:
            _, payload = f.result(timeout=0)
            x = json.loads(eq.task_info(f.eq_task_id).json_out)["x"]
            assert json.loads(payload) == {"y": x**2}
        eq.close()


class TestEndpointOutage:
    def test_fire_and_forget_across_restart(self):
        broker = CloudBroker()
        client = FabricClient(broker, "tok")
        endpoint = Endpoint(broker, "site", "tok").start()
        endpoint.stop()  # site goes dark

        future = client.submit(fast_square, {"x": 4}, endpoint=endpoint.endpoint_id)
        assert future.state() == FabricTaskState.PENDING

        # Site comes back (same registration) and the task completes.
        revived = Endpoint(
            broker, "site", "tok", endpoint_id=endpoint.endpoint_id
        ).start()
        try:
            assert future.result(timeout=15) == {"y": 16}
        finally:
            revived.stop()


class TestDurableRestart:
    def test_sqlite_queue_survives_reopen(self, tmp_path):
        path = str(tmp_path / "emews.db")
        eq = EQSQL(SqliteTaskStore(path))
        futures = eq.submit_tasks("exp", 0, [json.dumps({"x": i}) for i in range(5)])
        task_ids = [f.eq_task_id for f in futures]
        eq.close()  # "the resource fails"

        # Reattach: all five tasks still queued, same ids, same order.
        eq2 = EQSQL(SqliteTaskStore(path))
        assert eq2.queue_lengths(0)[0] == 5
        assert eq2.store.tasks_for_experiment("exp") == task_ids

        pool = ThreadedWorkerPool(
            eq2, PythonTaskHandler(fast_square),
            PoolConfig(work_type=0, n_workers=2),
        ).start()
        # New futures bound to the surviving ids resolve normally.
        from repro.core.futures import Future

        revived = [Future(eq2, tid, 0) for tid in task_ids]
        done = list(as_completed(revived, timeout=30, delay=0.01))
        pool.stop()
        assert len(done) == 5
        eq2.close()

"""End-to-end tracing: ME → service → pool with cross-wire parenting.

The acceptance bar for the telemetry subsystem: one traced run through
the full pipeline produces spans from at least five distinct components
(driver, eqsql, service, pool, handler), every parent reference resolves
inside the trace, and the service-side spans parent under the
client-side RPC spans across the TCP hop.
"""

from __future__ import annotations

import json

import pytest

from repro.core.constants import EQ_STOP
from repro.core.eqsql import EQSQL, init_eqsql
from repro.core.futures import as_completed
from repro.core.service import TaskService
from repro.core.service_client import RemoteTaskStore
from repro.db.memory_backend import MemoryTaskStore
from repro.pools.config import PoolConfig
from repro.pools.handlers import PythonTaskHandler
from repro.pools.pool import ThreadedWorkerPool
from repro.telemetry.metrics import MetricsRegistry, set_metrics
from repro.telemetry.tracing import Tracer, set_tracer, span_tree
from repro.util.clock import SystemClock

N_TASKS = 8


@pytest.fixture
def tracer():
    """An enabled tracer installed as the process default for the test.

    Pool/handler/service code resolves the tracer globally, so the
    global must point at the test instance; restored afterwards.
    """
    tracer = Tracer(clock=SystemClock(), enabled=True)
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(MetricsRegistry())
    yield tracer
    set_tracer(previous_tracer)
    set_metrics(previous_metrics)


def _run_workload(eq: EQSQL, tracer: Tracer) -> None:
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda params: {"y": params["x"] * 2}),
        PoolConfig(
            work_type=0, n_workers=2, batch_size=2, threshold=1,
            name="trace-pool", poll_delay=0.005,
        ),
    )
    with tracer.span("driver.run", component="driver"):
        futures = eq.submit_tasks(
            "trace-exp", 0, [json.dumps({"x": x}) for x in range(N_TASKS)]
        )
        pool.start()
        for future in as_completed(futures, timeout=30):
            future.result(timeout=0)
        stop = eq.submit_task("trace-exp", 0, EQ_STOP, priority=-100)
        stop.result(timeout=10, delay=0.01)
    pool.join(timeout=10)


class TestLocalPipeline:
    def test_local_store_trace_components_and_parenting(self, tracer):
        eq = init_eqsql(tracer=tracer)
        _run_workload(eq, tracer)
        eq.close()

        spans = tracer.spans()
        components = set(tracer.components())
        assert {"driver", "eqsql", "pool", "handler"} <= components

        by_id = {s.span_id: s for s in spans}
        # Every parent reference resolves inside the trace.
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, (span.name, span.parent_id)

        # Each pool.task span traces back to the driver's submit batch.
        submit = next(s for s in spans if s.name == "eqsql.submit_batch")
        tasks = [s for s in spans if s.name == "pool.task"]
        assert len(tasks) == N_TASKS
        for task in tasks:
            assert task.parent_id == submit.span_id
            assert task.trace_id == submit.trace_id

        # Handler spans nest inside their pool.task span (same thread).
        tree = span_tree(spans)
        for task in tasks:
            children = {s.name for s in tree.get(task.span_id, [])}
            assert "handler.PythonTaskHandler" in children
            assert "pool.report" in children


class TestServicePipeline:
    def test_cross_wire_parenting(self, tracer):
        service = TaskService(MemoryTaskStore()).start()
        host, port = service.address
        remote = RemoteTaskStore(host, port)
        eq = EQSQL(remote, clock=tracer.clock)
        try:
            _run_workload(eq, tracer)
        finally:
            remote.close()
            service.stop()

        spans = tracer.spans()
        components = set(tracer.components())
        # The acceptance criterion: >= 5 distinct components.
        assert {"driver", "eqsql", "service", "pool", "handler"} <= components
        assert "service_client" in components and "db" in components

        by_id = {s.span_id: s for s in spans}
        rpc_spans = {
            s.span_id: s for s in spans
            if s.component == "service_client" and s.name.startswith("rpc.")
            and s.name not in ("rpc.send", "rpc.recv")
        }
        service_spans = [s for s in spans if s.component == "service"]
        assert service_spans, "no server-side spans recorded"
        for span in service_spans:
            # Server handling parents under the client RPC span even
            # though it ran on the service's connection thread.
            assert span.parent_id in rpc_spans, span.name
            parent = rpc_spans[span.parent_id]
            assert span.trace_id == parent.trace_id
            assert parent.name == f"rpc.{span.name.removeprefix('service.')}"

        # DB time nests inside the service handling span.
        tree = span_tree(spans)
        for span in service_spans:
            child_names = {c.name for c in tree.get(span.span_id, [])}
            assert span.name.replace("service.", "db.") in child_names

        # The wire hop did not break payload-path propagation either.
        submit = next(s for s in spans if s.name == "eqsql.submit_batch")
        tasks = [s for s in spans if s.name == "pool.task"]
        assert len(tasks) == N_TASKS
        for task in tasks:
            assert task.trace_id == submit.trace_id
            assert task.parent_id == submit.span_id
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, (span.name, span.parent_id)

    def test_rtt_decomposes(self, tracer):
        service = TaskService(MemoryTaskStore()).start()
        host, port = service.address
        remote = RemoteTaskStore(host, port)
        eq = EQSQL(remote, clock=tracer.clock)
        try:
            eq.submit_task("exp", 0, "payload")
        finally:
            remote.close()
            service.stop()

        spans = tracer.spans()
        rpc = next(s for s in spans if s.name == "rpc.create_task")
        server = next(s for s in spans if s.name == "service.create_task")
        db = next(s for s in spans if s.name == "db.create_task")
        # Client RTT strictly contains server handling, which strictly
        # contains DB time (all on one wall clock on loopback).
        assert rpc.duration() >= server.duration() >= db.duration()


class TestDisabledOverheadPath:
    def test_untraced_run_records_nothing(self, tracer):
        tracer.disable()
        eq = init_eqsql(tracer=tracer)
        _run_workload_untraced(eq)
        eq.close()
        assert len(tracer) == 0


def _run_workload_untraced(eq: EQSQL) -> None:
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda params: {"y": params["x"]}),
        PoolConfig(
            work_type=0, n_workers=2, batch_size=2, threshold=1,
            name="plain-pool", poll_delay=0.005,
        ),
    )
    futures = eq.submit_tasks(
        "plain-exp", 0, [json.dumps({"x": x}) for x in range(4)]
    )
    pool.start()
    for future in as_completed(futures, timeout=30):
        future.result(timeout=0)
    stop = eq.submit_task("plain-exp", 0, EQ_STOP, priority=-100)
    stop.result(timeout=10, delay=0.01)
    pool.join(timeout=10)

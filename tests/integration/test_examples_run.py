"""Every shipped example must run clean (examples never rot).

Each example is executed as a real subprocess — exactly how a user runs
it — and must exit 0 with its expected landmark output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["pool done: 10 completed, 0 failed"]),
    ("ackley_gpr_workflow.py", ["best Ackley value", "repri #1"]),
    ("epi_calibration.py", ["curation lineage", "implied R0"]),
    ("federated_sites.py", ["direct submission rejected", "remote summary via proxy"]),
    ("multi_language.py", ["R-style API result", "OSPREY", "weighted_sum"]),
    ("shared_development.py", ["workflow spec", "beta posterior", "0/1 cases passed"]),
]


@pytest.mark.parametrize("script,landmarks", CASES, ids=[c[0] for c in CASES])
def test_example_runs_clean(script, landmarks):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, (
        f"{script} exited {proc.returncode}\nstdout:\n{proc.stdout[-2000:]}"
        f"\nstderr:\n{proc.stderr[-2000:]}"
    )
    for landmark in landmarks:
        assert landmark in proc.stdout, (
            f"{script} output missing {landmark!r}\n{proc.stdout[-2000:]}"
        )

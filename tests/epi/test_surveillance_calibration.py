"""Tests for surveillance generation and calibration objectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.epi import (
    CalibrationProblem,
    SEIRParams,
    SurveillanceModel,
    generate_surveillance,
    poisson_deviance,
    simulate_seir,
)


def true_incidence(days=120, beta=0.5, population=1e5):
    params = SEIRParams(beta=beta, sigma=0.25, gamma=0.2, population=population)
    result = simulate_seir(params, initial_infected=5, t_end=float(days), dt=0.25)
    steps = int(round(1 / 0.25))
    return result.incidence[1:].reshape(days, steps).sum(axis=1)


class TestSurveillance:
    def test_reporting_rate_thins_counts(self):
        incidence = true_incidence()
        rng = np.random.default_rng(0)
        low = generate_surveillance(
            incidence, SurveillanceModel(reporting_rate=0.1, delay_mean=0), rng
        )
        rng = np.random.default_rng(0)
        high = generate_surveillance(
            incidence, SurveillanceModel(reporting_rate=0.9, delay_mean=0), rng
        )
        assert high.sum() > 5 * low.sum()

    def test_mean_preserved_roughly(self):
        incidence = true_incidence()
        rng = np.random.default_rng(1)
        observed = generate_surveillance(
            incidence, SurveillanceModel(reporting_rate=0.5, delay_mean=0), rng
        )
        assert observed.sum() == pytest.approx(0.5 * incidence.sum(), rel=0.05)

    def test_delay_shifts_peak_later(self):
        incidence = true_incidence()
        rng = np.random.default_rng(2)
        no_delay = generate_surveillance(
            incidence,
            SurveillanceModel(reporting_rate=0.5, delay_mean=0, dispersion=np.inf),
            rng,
        )
        rng = np.random.default_rng(2)
        delayed = generate_surveillance(
            incidence,
            SurveillanceModel(reporting_rate=0.5, delay_mean=5, dispersion=np.inf),
            rng,
        )
        assert int(np.argmax(delayed)) >= int(np.argmax(no_delay))

    def test_counts_nonnegative_integers(self):
        incidence = true_incidence()
        observed = generate_surveillance(
            incidence, SurveillanceModel(), np.random.default_rng(3)
        )
        assert np.all(observed >= 0)
        assert np.all(observed == np.round(observed))

    def test_dispersion_increases_variance(self):
        incidence = np.full(2000, 100.0)
        noisy = generate_surveillance(
            incidence,
            SurveillanceModel(reporting_rate=1.0, delay_mean=0, dispersion=2.0),
            np.random.default_rng(4),
        )
        poisson = generate_surveillance(
            incidence,
            SurveillanceModel(reporting_rate=1.0, delay_mean=0, dispersion=np.inf),
            np.random.default_rng(4),
        )
        assert np.var(noisy) > 2 * np.var(poisson)

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            SurveillanceModel(reporting_rate=0)
        with pytest.raises(ValueError):
            SurveillanceModel(delay_mean=-1)
        with pytest.raises(ValueError):
            SurveillanceModel(dispersion=0)

    def test_negative_incidence_rejected(self):
        with pytest.raises(ValueError):
            generate_surveillance(
                np.array([-1.0]), SurveillanceModel(), np.random.default_rng(0)
            )


class TestPoissonDeviance:
    def test_zero_at_equality(self):
        obs = np.array([1.0, 5.0, 10.0])
        assert poisson_deviance(obs, obs) == pytest.approx(0.0, abs=1e-9)

    def test_positive_otherwise(self):
        assert poisson_deviance(np.array([5.0]), np.array([10.0])) > 0

    def test_handles_zero_observed(self):
        value = poisson_deviance(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
        assert value == pytest.approx(2 * 3.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            poisson_deviance(np.zeros(3), np.zeros(4))


class TestCalibrationProblem:
    @pytest.fixture
    def problem(self):
        truth = (0.5, 0.25, 0.2)
        incidence = true_incidence(days=100, beta=truth[0])
        surveillance = SurveillanceModel(reporting_rate=0.3, delay_mean=2.0)
        observed = generate_surveillance(
            incidence, surveillance, np.random.default_rng(11)
        )
        return (
            CalibrationProblem(
                observed=observed,
                population=1e5,
                surveillance=surveillance,
                initial_infected=5,
            ),
            truth,
        )

    def test_truth_scores_better_than_wrong_params(self, problem):
        prob, truth = problem
        loss_truth = prob.loss(np.array(truth))
        loss_wrong = prob.loss(np.array([1.2, 0.8, 0.6]))
        assert loss_truth < loss_wrong

    def test_out_of_bounds_penalized(self, problem):
        prob, _ = problem
        assert prob.loss(np.array([99.0, 0.25, 0.2])) == 1e12

    def test_task_function_json_contract(self, problem):
        prob, truth = problem
        out = prob.task_function({"x": list(truth)})
        assert set(out) == {"y"}
        assert out["y"] == pytest.approx(prob.loss(np.array(truth)))

    def test_loss_shape_validation(self, problem):
        prob, _ = problem
        with pytest.raises(ValueError):
            prob.loss(np.array([0.5, 0.2]))

    def test_expected_cases_reasonable(self, problem):
        prob, truth = problem
        expected = prob.expected_cases(np.array(truth))
        assert expected.shape == prob.observed.shape
        assert np.all(expected >= 0)
        # Total expected reported cases should be near observed total.
        assert expected.sum() == pytest.approx(prob.observed.sum(), rel=0.3)

"""Tests for the stochastic SEIR and the network ABM."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.epi import ABMParams, NetworkABM, SEIRParams, simulate_stochastic_seir


def params(beta=0.5, sigma=0.25, gamma=0.2, population=5000):
    return SEIRParams(beta=beta, sigma=sigma, gamma=gamma, population=population)


class TestStochasticSEIR:
    def test_population_conserved(self):
        rng = np.random.default_rng(0)
        result = simulate_stochastic_seir(params(), rng, days=150)
        total = result.S + result.E + result.I + result.R
        assert np.all(total == 5000)

    def test_counts_are_nonnegative_integers(self):
        rng = np.random.default_rng(1)
        result = simulate_stochastic_seir(params(), rng, days=100)
        for series in (result.S, result.E, result.I, result.R, result.incidence):
            assert np.all(series >= 0)
            assert np.all(series == np.round(series))

    def test_reproducible_with_seed(self):
        a = simulate_stochastic_seir(params(), np.random.default_rng(42), days=80)
        b = simulate_stochastic_seir(params(), np.random.default_rng(42), days=80)
        assert np.array_equal(a.incidence, b.incidence)

    def test_matches_ode_attack_rate_in_large_population(self):
        from repro.epi import simulate_seir

        p = params(population=200_000)
        ode = simulate_seir(p, initial_infected=50, t_end=400).attack_rate()
        rng = np.random.default_rng(7)
        stoch = simulate_stochastic_seir(
            p, rng, initial_infected=50, days=400
        ).attack_rate()
        assert stoch == pytest.approx(ode, abs=0.05)

    def test_die_out_possible_with_single_seed(self):
        """With one seed and moderate R0, some runs go extinct early."""
        p = params(beta=0.3, gamma=0.25, population=2000)
        outcomes = [
            simulate_stochastic_seir(
                p, np.random.default_rng(seed), days=250
            ).died_out_early()
            for seed in range(30)
        ]
        assert any(outcomes)
        assert not all(outcomes)

    def test_incidence_accounts_for_s_decrease(self):
        rng = np.random.default_rng(3)
        result = simulate_stochastic_seir(params(), rng, days=120)
        assert result.incidence.sum() == result.S[0] - result.S[-1]

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_stochastic_seir(params(), rng, days=0)
        with pytest.raises(ValueError):
            simulate_stochastic_seir(params(), rng, dt=0)
        with pytest.raises(ValueError):
            simulate_stochastic_seir(params(population=5), rng, initial_infected=10)


class TestNetworkABM:
    def make_abm(self, p_transmit=0.08, n=800, k=8, seed=0):
        graph = nx.watts_strogatz_graph(n, k, 0.1, seed=seed)
        return NetworkABM(graph, ABMParams(p_transmit=p_transmit, sigma=0.3, gamma=0.15))

    def test_counts_conserved(self):
        abm = self.make_abm()
        rng = np.random.default_rng(0)
        abm.seed(rng, 5)
        result = abm.run(rng, days=100)
        assert np.all(result.counts.sum(axis=1) == 800)

    def test_epidemic_spreads_on_connected_graph(self):
        abm = self.make_abm(p_transmit=0.15)
        rng = np.random.default_rng(1)
        abm.seed(rng, 10)
        result = abm.run(rng, days=200)
        assert result.attack_rate() > 0.3

    def test_no_transmission_no_spread(self):
        abm = self.make_abm(p_transmit=0.0)
        rng = np.random.default_rng(0)
        abm.seed(rng, 5)
        result = abm.run(rng, days=60)
        # Only the seeds ever leave S.
        assert result.counts[-1, 0] == 800 - 5

    def test_isolated_nodes_never_infected(self):
        graph = nx.empty_graph(50)
        abm = NetworkABM(graph, ABMParams(p_transmit=1.0, sigma=1.0, gamma=0.1))
        rng = np.random.default_rng(0)
        abm.seed(rng, 3)
        result = abm.run(rng, days=50)
        assert result.attack_rate() == pytest.approx(3 / 50)

    def test_stops_when_extinct(self):
        abm = self.make_abm(p_transmit=0.0)
        rng = np.random.default_rng(0)
        abm.seed(rng, 2)
        result = abm.run(rng, days=500)
        # gamma=0.15: extinct long before 500 days; tail is frozen.
        assert np.array_equal(result.counts[-1], result.counts[-2])

    def test_denser_graph_spreads_more(self):
        rates = []
        for k in (4, 16):
            graph = nx.watts_strogatz_graph(600, k, 0.1, seed=3)
            abm = NetworkABM(graph, ABMParams(p_transmit=0.08, sigma=0.3, gamma=0.15))
            rng = np.random.default_rng(5)
            abm.seed(rng, 10)
            rates.append(abm.run(rng, days=200).attack_rate())
        assert rates[1] > rates[0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            NetworkABM(nx.empty_graph(0), ABMParams(0.1, 0.3, 0.2))
        with pytest.raises(ValueError):
            ABMParams(p_transmit=1.5, sigma=0.3, gamma=0.2)
        abm = self.make_abm()
        with pytest.raises(ValueError):
            abm.seed(np.random.default_rng(0), 0)
        with pytest.raises(ValueError):
            abm.run(np.random.default_rng(0), days=0)

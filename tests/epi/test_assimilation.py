"""Tests for the SEIR particle filter (data assimilation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.epi import (
    ParticleFilter,
    ParticleFilterConfig,
    SEIRParams,
    simulate_stochastic_seir,
)
from repro.epi.assimilation import AssimilationError


def synthetic_observations(beta=0.55, days=60, population=100_000, seed=5,
                           reporting_rate=0.3):
    """Daily reported cases from a known-truth stochastic epidemic."""
    params = SEIRParams(beta=beta, sigma=0.25, gamma=0.2, population=population)
    rng = np.random.default_rng(seed)
    truth = simulate_stochastic_seir(params, rng, initial_infected=10, days=days)
    return rng.binomial(truth.incidence[1:].astype(int), reporting_rate).astype(float)


def make_filter(seed=0, **overrides):
    config = ParticleFilterConfig(
        n_particles=400,
        population=100_000,
        sigma=0.25,
        gamma=0.2,
        reporting_rate=0.3,
        initial_infected=10,
        **overrides,
    )
    return ParticleFilter(config, np.random.default_rng(seed))


class TestConfig:
    def test_validation(self):
        with pytest.raises(AssimilationError):
            ParticleFilterConfig(n_particles=1)
        with pytest.raises(AssimilationError):
            ParticleFilterConfig(reporting_rate=0)
        with pytest.raises(AssimilationError):
            ParticleFilterConfig(beta_prior=(1.0, 0.5))


class TestFilter:
    def test_population_conserved_across_particles(self):
        pf = make_filter()
        pf.run(synthetic_observations(days=20))
        total = pf.S + pf.E + pf.I + pf.R
        assert np.all(total == pf.config.population)

    def test_beta_posterior_concentrates_near_truth(self):
        observations = synthetic_observations(beta=0.55, days=60)
        pf = make_filter(seed=1)
        prior_mean, prior_std = pf.beta_posterior()
        pf.run(observations)
        post_mean, post_std = pf.beta_posterior()
        # The posterior tightens and moves toward the truth.
        assert post_std < prior_std
        assert abs(post_mean - 0.55) < abs(prior_mean - 0.55) + 0.05
        assert 0.35 < post_mean < 0.8

    def test_steps_recorded(self):
        observations = synthetic_observations(days=15)
        pf = make_filter()
        steps = pf.run(observations)
        assert len(steps) == 15
        assert [s.day for s in steps] == list(range(1, 16))
        assert all(s.ess > 1 for s in steps)
        assert all(np.isfinite(s.beta_mean) for s in steps)

    def test_filtered_expectation_tracks_observations(self):
        observations = synthetic_observations(beta=0.55, days=60, seed=9)
        pf = make_filter(seed=2)
        steps = pf.run(observations)
        # Over the epidemic's growth phase the one-step-ahead
        # expectations should correlate strongly with the data.
        expected = np.array([s.expected_mean for s in steps])
        observed = np.array([s.observed for s in steps])
        mask = observed > 0
        corr = np.corrcoef(expected[mask], observed[mask])[0, 1]
        assert corr > 0.8

    def test_forecast_shape_and_state_preserved(self):
        pf = make_filter()
        pf.run(synthetic_observations(days=20))
        before = pf.S.copy()
        forecast = pf.forecast(7)
        assert forecast.shape == (7,)
        assert np.all(forecast >= 0)
        assert np.array_equal(pf.S, before)  # forecasting is side-effect free

    def test_forecast_validation(self):
        with pytest.raises(AssimilationError):
            make_filter().forecast(0)

    def test_deterministic_given_seed(self):
        observations = synthetic_observations(days=25)
        a = make_filter(seed=7).run(observations)
        b = make_filter(seed=7).run(observations)
        assert [s.beta_mean for s in a] == [s.beta_mean for s in b]

    def test_resampling_keeps_ess_healthy(self):
        observations = synthetic_observations(days=50)
        pf = make_filter(seed=3)
        steps = pf.run(observations)
        # With per-day resampling the ESS should rarely collapse to ~1.
        ess = np.array([s.ess for s in steps])
        assert np.median(ess) > pf.config.n_particles * 0.05

"""Tests for multi-resolution ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.epi import MultiResolutionEnsemble, inverse_error_weights
from repro.epi.ensemble import EnsembleError


def constant_member(value):
    return lambda days: np.full(days, float(value))


class TestWeights:
    def test_better_fit_gets_more_weight(self):
        weights = inverse_error_weights(np.array([1.0, 4.0]))
        assert weights[0] > weights[1]
        assert weights.sum() == pytest.approx(1.0)

    def test_perfect_fit_dominates(self):
        weights = inverse_error_weights(np.array([0.0, 1.0]))
        assert weights[0] > 0.999

    def test_equal_scores_equal_weights(self):
        weights = inverse_error_weights(np.array([2.0, 2.0, 2.0]))
        assert np.allclose(weights, 1 / 3)


class TestEnsemble:
    def make_observed(self, value=10.0, days=20):
        return np.full(days, value)

    def test_weighted_mean_tracks_best_member(self):
        ensemble = (
            MultiResolutionEnsemble()
            .add_member("good", constant_member(10.0))
            .add_member("bad", constant_member(50.0))
        )
        forecast = ensemble.forecast(self.make_observed(10.0), horizon=5)
        # The good member fits perfectly and dominates the mean.
        assert np.allclose(forecast.mean, 10.0, atol=0.5)
        weights = forecast.weights()
        assert weights["good"] > 0.99

    def test_interval_spans_members(self):
        ensemble = (
            MultiResolutionEnsemble()
            .add_member("low", constant_member(8.0))
            .add_member("mid", constant_member(10.0))
            .add_member("high", constant_member(12.0))
        )
        forecast = ensemble.forecast(self.make_observed(10.0), horizon=3, interval=0.9)
        assert np.all(forecast.lower <= forecast.mean)
        assert np.all(forecast.mean <= forecast.upper)
        assert np.all(forecast.lower >= 8.0 - 1e-9)
        assert np.all(forecast.upper <= 12.0 + 1e-9)

    def test_member_scores_recorded(self):
        ensemble = (
            MultiResolutionEnsemble()
            .add_member("exact", constant_member(10.0))
            .add_member("off", constant_member(13.0))
        )
        forecast = ensemble.forecast(self.make_observed(10.0), horizon=2)
        by_name = {m.name: m for m in forecast.members}
        assert by_name["exact"].score == pytest.approx(0.0)
        assert by_name["off"].score == pytest.approx(9.0)

    def test_heterogeneous_real_members(self):
        """ODE, stochastic, and ABM members forecasting one epidemic."""
        from repro.epi import (
            ABMParams,
            NetworkABM,
            SEIRParams,
            simulate_seir,
            simulate_stochastic_seir,
        )
        import networkx as nx

        params = SEIRParams(beta=0.5, sigma=0.25, gamma=0.2, population=5000)

        def ode_member(days):
            result = simulate_seir(params, initial_infected=10, t_end=float(days), dt=0.5)
            return result.incidence[1:].reshape(days, 2).sum(axis=1)

        def stochastic_member(days):
            result = simulate_stochastic_seir(
                params, np.random.default_rng(3), initial_infected=10, days=days
            )
            return result.incidence[1:]

        def abm_member(days):
            graph = nx.watts_strogatz_graph(5000, 8, 0.1, seed=0)
            abm = NetworkABM(graph, ABMParams(p_transmit=0.07, sigma=0.25, gamma=0.2))
            rng = np.random.default_rng(4)
            abm.seed(rng, 10)
            result = abm.run(rng, days=days, stop_when_extinct=False)
            s = result.counts[:, 0].astype(float)
            return -np.diff(s)

        observed = ode_member(40)[:30]  # "truth" = the ODE's first 30 days
        ensemble = (
            MultiResolutionEnsemble()
            .add_member("ode", lambda d: ode_member(d))
            .add_member("stochastic", lambda d: stochastic_member(d))
            .add_member("abm", lambda d: abm_member(d))
        )
        forecast = ensemble.forecast(observed, horizon=10)
        weights = forecast.weights()
        assert set(weights) == {"ode", "stochastic", "abm"}
        # The member matching the data generator dominates.
        assert weights["ode"] == max(weights.values())
        assert forecast.mean.shape == (10,)

    def test_errors(self):
        ensemble = MultiResolutionEnsemble()
        with pytest.raises(EnsembleError):
            ensemble.forecast(np.ones(10), horizon=5)  # no members
        ensemble.add_member("m", constant_member(1.0))
        with pytest.raises(EnsembleError):
            ensemble.add_member("m", constant_member(2.0))
        with pytest.raises(EnsembleError):
            ensemble.forecast(np.ones(1), horizon=5)
        with pytest.raises(EnsembleError):
            ensemble.forecast(np.ones(10), horizon=0)
        with pytest.raises(EnsembleError):
            ensemble.forecast(np.ones(10), horizon=2, interval=1.5)

    def test_wrong_length_member_rejected(self):
        ensemble = MultiResolutionEnsemble().add_member(
            "short", lambda days: np.ones(days - 1)
        )
        with pytest.raises(EnsembleError, match="returned"):
            ensemble.forecast(np.ones(5), horizon=2)

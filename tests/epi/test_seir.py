"""Tests for the deterministic SEIR model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.epi import SEIRParams, simulate_seir


def params(beta=0.5, sigma=0.25, gamma=0.2, population=1e5):
    return SEIRParams(beta=beta, sigma=sigma, gamma=gamma, population=population)


class TestParams:
    def test_r0(self):
        assert params(beta=0.6, gamma=0.2).r0 == pytest.approx(3.0)

    def test_r0_zero_gamma(self):
        assert params(gamma=0.0).r0 == float("inf")

    def test_invalid(self):
        with pytest.raises(ValueError):
            SEIRParams(beta=-1, sigma=0.1, gamma=0.1, population=100)
        with pytest.raises(ValueError):
            SEIRParams(beta=0.5, sigma=0.1, gamma=0.1, population=0)


class TestDynamics:
    def test_population_conserved(self):
        result = simulate_seir(params(), t_end=100, dt=0.1)
        total = result.S + result.E + result.I + result.R
        assert np.allclose(total, 1e5, rtol=1e-9)

    def test_susceptibles_monotone_decreasing(self):
        result = simulate_seir(params(), t_end=150)
        assert np.all(np.diff(result.S) <= 1e-9)

    def test_recovered_monotone_increasing(self):
        result = simulate_seir(params(), t_end=150)
        assert np.all(np.diff(result.R) >= -1e-9)

    def test_supercritical_epidemic_takes_off(self):
        result = simulate_seir(params(beta=0.6, gamma=0.2), t_end=300)
        assert result.attack_rate() > 0.5
        _, peak = result.peak_infected()
        assert peak > 100

    def test_subcritical_epidemic_dies_out(self):
        result = simulate_seir(params(beta=0.1, gamma=0.2), t_end=300)
        assert result.attack_rate() < 0.01

    def test_higher_r0_larger_attack_rate(self):
        low = simulate_seir(params(beta=0.3), t_end=400).attack_rate()
        high = simulate_seir(params(beta=0.9), t_end=400).attack_rate()
        assert high > low

    def test_final_size_relation(self):
        """Attack rate z solves z = 1 - exp(-R0 z) for SEIR too."""
        p = params(beta=0.5, gamma=0.25)  # R0 = 2
        z = simulate_seir(p, t_end=1000, dt=0.1).attack_rate()
        assert z == pytest.approx(1 - np.exp(-p.r0 * z), abs=1e-3)

    def test_incidence_nonnegative_sums_to_s_drop(self):
        result = simulate_seir(params(), t_end=200)
        assert np.all(result.incidence >= 0)
        assert result.incidence.sum() == pytest.approx(
            result.S[0] - result.S[-1], rel=1e-9
        )

    def test_no_seed_no_epidemic(self):
        result = simulate_seir(params(), initial_infected=0.0, t_end=50)
        assert result.attack_rate() == pytest.approx(0.0, abs=1e-12)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            simulate_seir(params(), t_end=0)
        with pytest.raises(ValueError):
            simulate_seir(params(), dt=0)
        with pytest.raises(ValueError):
            simulate_seir(params(), t_end=1.0, dt=2.0)

    def test_overseeded_rejected(self):
        with pytest.raises(ValueError):
            simulate_seir(params(population=10), initial_infected=11)

    @settings(max_examples=25, deadline=None)
    @given(
        beta=st.floats(min_value=0.05, max_value=1.5),
        sigma=st.floats(min_value=0.05, max_value=1.0),
        gamma=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_conservation_and_nonnegativity_hold_generally(self, beta, sigma, gamma):
        result = simulate_seir(
            SEIRParams(beta=beta, sigma=sigma, gamma=gamma, population=1e4),
            t_end=120,
            dt=0.25,
        )
        total = result.S + result.E + result.I + result.R
        assert np.allclose(total, 1e4, rtol=1e-6)
        for series in (result.S, result.E, result.I, result.R):
            assert np.all(series >= 0)

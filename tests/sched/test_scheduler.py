"""Tests for the batch scheduler (FIFO + EASY backfill + queue delays)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.sched import Cluster, ClusterSpec, JobState, Scheduler
from repro.util.errors import NotFoundError, SchedulerError


@pytest.fixture
def sched2():
    cluster = Cluster(ClusterSpec("test", n_nodes=2))
    scheduler = Scheduler(cluster, tick=0.005).start()
    yield scheduler
    scheduler.shutdown()


class TestBasicDispatch:
    def test_job_runs_and_completes(self, sched2):
        job = sched2.submit(lambda: 41 + 1, name="answer")
        assert job.wait(timeout=5)
        assert job.state == JobState.COMPLETED
        assert job.result == 42
        assert job.queue_wait() is not None and job.queue_wait() < 2.0

    def test_failure_recorded(self, sched2):
        job = sched2.submit(lambda: 1 / 0)
        assert job.wait(timeout=5)
        assert job.state == JobState.FAILED
        assert "ZeroDivisionError" in (job.error or "")

    def test_concurrent_jobs_share_nodes(self, sched2):
        barrier = threading.Barrier(2, timeout=5)
        jobs = [sched2.submit(barrier.wait, nodes=1) for _ in range(2)]
        for job in jobs:
            assert job.wait(timeout=5)
            assert job.state == JobState.COMPLETED

    def test_nodes_contention_serializes(self, sched2):
        order: list[int] = []
        lock = threading.Lock()

        def body(k):
            with lock:
                order.append(k)
            time.sleep(0.05)

        jobs = [sched2.submit(lambda k=k: body(k), nodes=2) for k in range(3)]
        for job in jobs:
            assert job.wait(timeout=10)
        # Whole-cluster jobs run one at a time, FIFO.
        assert order == [0, 1, 2]

    def test_invalid_walltime(self, sched2):
        with pytest.raises(SchedulerError):
            sched2.submit(lambda: None, walltime=0)

    def test_too_many_nodes(self, sched2):
        with pytest.raises(SchedulerError):
            sched2.submit(lambda: None, nodes=3)

    def test_unknown_job(self, sched2):
        with pytest.raises(NotFoundError):
            sched2.job(999)


class TestCancelAndShutdown:
    def test_cancel_pending(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=1))
        # Large queue delay keeps the job pending.
        scheduler = Scheduler(cluster, queue_delay=lambda j: 60.0, tick=0.005).start()
        try:
            job = scheduler.submit(lambda: None)
            assert scheduler.cancel(job.job_id)
            assert job.state == JobState.CANCELLED
        finally:
            scheduler.shutdown()

    def test_cancel_running_returns_false(self, sched2):
        release = threading.Event()
        job = sched2.submit(release.wait)
        while job.state == JobState.PENDING:
            time.sleep(0.005)
        assert not sched2.cancel(job.job_id)
        release.set()
        assert job.wait(timeout=5)

    def test_shutdown_cancels_pending(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=1))
        scheduler = Scheduler(cluster, queue_delay=lambda j: 60.0, tick=0.005).start()
        job = scheduler.submit(lambda: None)
        scheduler.shutdown()
        assert job.state == JobState.CANCELLED


class TestQueueDelay:
    def test_delay_model_delays_start(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=1))
        scheduler = Scheduler(cluster, queue_delay=lambda j: 0.15, tick=0.005).start()
        try:
            job = scheduler.submit(lambda: "done")
            assert job.wait(timeout=5)
            assert job.queue_wait() >= 0.14
        finally:
            scheduler.shutdown()

    def test_later_eligible_job_runs_before_delayed_head(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=1))
        delays = {"slow": 0.5, "fast": 0.0}
        scheduler = Scheduler(
            cluster, queue_delay=lambda j: delays[j.name], tick=0.005
        ).start()
        try:
            order: list[str] = []
            lock = threading.Lock()

            def body(name):
                with lock:
                    order.append(name)

            slow = scheduler.submit(lambda: body("slow"), name="slow")
            fast = scheduler.submit(lambda: body("fast"), name="fast")
            assert slow.wait(timeout=5) and fast.wait(timeout=5)
            assert order == ["fast", "slow"]
        finally:
            scheduler.shutdown()


class TestWalltime:
    def test_timeout_enforced(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=1))
        scheduler = Scheduler(cluster, tick=0.005).start()
        try:
            release = threading.Event()
            job = scheduler.submit(release.wait, walltime=0.1)
            assert job.wait(timeout=5)
            assert job.state == JobState.TIMEOUT
            # Nodes were reclaimed: the next job can run.
            follow = scheduler.submit(lambda: "ran")
            assert follow.wait(timeout=5)
            assert follow.state == JobState.COMPLETED
            release.set()
        finally:
            scheduler.shutdown()


class TestBackfill:
    def test_small_job_backfills_around_blocked_head(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=2))
        scheduler = Scheduler(cluster, tick=0.005).start()
        try:
            hold = threading.Event()
            # Occupies 1 node for a while (declared walltime 10).
            long_job = scheduler.submit(hold.wait, nodes=1, walltime=10, name="long")
            while long_job.state == JobState.PENDING:
                time.sleep(0.005)
            # Head needs 2 nodes: blocked until long_job finishes.
            head = scheduler.submit(lambda: "head", nodes=2, walltime=1, name="head")
            # Small short job fits the free node and ends before the
            # head could possibly start -> backfills.
            small = scheduler.submit(lambda: "small", nodes=1, walltime=0.5, name="small")
            assert small.wait(timeout=5)
            assert small.state == JobState.COMPLETED
            assert head.state == JobState.PENDING  # still blocked
            hold.set()
            assert head.wait(timeout=10)
            assert head.state == JobState.COMPLETED
        finally:
            scheduler.shutdown()

    def test_backfill_never_delays_head(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=2))
        scheduler = Scheduler(cluster, tick=0.005).start()
        try:
            hold = threading.Event()
            long_job = scheduler.submit(hold.wait, nodes=1, walltime=0.6, name="long")
            while long_job.state == JobState.PENDING:
                time.sleep(0.005)
            head = scheduler.submit(lambda: "head", nodes=2, walltime=1, name="head")
            # This job's walltime (10) exceeds the head's shadow start
            # (~0.6s away) and it would eat the head's second node, so
            # EASY must NOT backfill it.
            greedy = scheduler.submit(lambda: "greedy", nodes=1, walltime=10, name="greedy")
            time.sleep(0.2)
            assert greedy.state == JobState.PENDING
            hold.set()
            assert head.wait(timeout=10)
            assert greedy.wait(timeout=10)
        finally:
            scheduler.shutdown()

"""Tests for the PSI/J-style portable job layer."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import EQSQL, as_completed
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler
from repro.sched import Cluster, ClusterSpec, JobState, Scheduler
from repro.sched.psij import (
    JobSpec,
    LocalSchedulerExecutor,
    managed_pool_job,
)
from repro.util.errors import NotFoundError


@pytest.fixture
def executor():
    scheduler = Scheduler(Cluster(ClusterSpec("c", n_nodes=2)), tick=0.005).start()
    ex = LocalSchedulerExecutor(scheduler, poll=0.005).start()
    yield ex
    ex.stop()
    scheduler.shutdown()


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec()
        assert spec.nodes == 1 and spec.walltime == 3600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(nodes=0)
        with pytest.raises(ValueError):
            JobSpec(walltime=0)


class TestExecutor:
    def test_submit_and_wait(self, executor):
        handle = executor.submit(JobSpec(name="answer"), lambda: 42)
        assert handle.wait(timeout=10) == JobState.COMPLETED
        assert handle.native.result == 42
        assert handle.spec.name == "answer"

    def test_status_callbacks_fire_on_transitions(self, executor):
        seen: list[JobState] = []
        lock = threading.Lock()
        release = threading.Event()

        def record(_handle, state):
            with lock:
                seen.append(state)

        handle = executor.submit(JobSpec(), release.wait)
        handle.on_status(record)
        # Let it start running...
        deadline = time.time() + 5
        while JobState.RUNNING not in seen and time.time() < deadline:
            time.sleep(0.005)
        release.set()
        handle.wait(timeout=10)
        deadline = time.time() + 5
        while JobState.COMPLETED not in seen and time.time() < deadline:
            time.sleep(0.005)
        assert seen == [JobState.RUNNING, JobState.COMPLETED]

    def test_late_callback_fires_immediately(self, executor):
        handle = executor.submit(JobSpec(), lambda: "done")
        handle.wait(timeout=10)
        got: list[JobState] = []
        handle.on_status(lambda _h, s: got.append(s))
        assert got == [JobState.COMPLETED]

    def test_cancel_pending(self):
        scheduler = Scheduler(
            Cluster(ClusterSpec("c", n_nodes=1)),
            queue_delay=lambda j: 60.0,
            tick=0.005,
        ).start()
        ex = LocalSchedulerExecutor(scheduler, poll=0.005).start()
        try:
            handle = ex.submit(JobSpec(), lambda: None)
            assert handle.cancel()
            assert handle.state == JobState.CANCELLED
        finally:
            ex.stop()
            scheduler.shutdown()

    def test_failure_state_delivered(self, executor):
        handle = executor.submit(JobSpec(), lambda: 1 / 0)
        assert handle.wait(timeout=10) == JobState.FAILED
        assert "ZeroDivisionError" in (handle.native.error or "")

    def test_active_jobs_and_gc(self, executor):
        release = threading.Event()
        handle = executor.submit(JobSpec(), release.wait)
        deadline = time.time() + 5
        while not executor.active_jobs() and time.time() < deadline:
            time.sleep(0.005)
        assert handle in executor.active_jobs()
        release.set()
        handle.wait(timeout=10)
        # The monitor garbage-collects terminal handles once their
        # callbacks have been delivered; wait for that cycle.
        deadline = time.time() + 5
        while time.time() < deadline:
            try:
                executor.job(handle.job_id)
            except NotFoundError:
                break
            time.sleep(0.005)
        assert executor.active_jobs() == []
        with pytest.raises(NotFoundError):
            executor.job(handle.job_id)  # garbage-collected after terminal


class TestManagedPoolJob:
    def test_pool_runs_as_monitored_job_and_terminates(self, executor):
        eq = EQSQL(MemoryTaskStore())
        futures = eq.submit_tasks(
            "exp", 0, [json.dumps({"x": i}) for i in range(8)]
        )
        handle, stop = managed_pool_job(
            executor,
            eq,
            PythonTaskHandler(lambda d: {"y": d["x"] + 1}),
            PoolConfig(work_type=0, n_workers=2, name="managed"),
        )
        done = list(as_completed(futures, timeout=20, delay=0.01))
        assert len(done) == 8
        # Active monitoring sees the pilot job running.
        assert handle.state == JobState.RUNNING
        # Terminate the pool through the portable layer.
        stop()
        assert handle.wait(timeout=10) == JobState.COMPLETED
        assert handle.native.result == 8
        eq.close()

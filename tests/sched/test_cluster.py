"""Tests for the cluster resource model."""

from __future__ import annotations

import pytest

from repro.sched import Cluster, ClusterSpec


class TestClusterSpec:
    def test_total_cores(self):
        spec = ClusterSpec("bebop", n_nodes=3, cores_per_node=36)
        assert spec.total_cores == 108

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec("x", n_nodes=0)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            ClusterSpec("x", n_nodes=1, cores_per_node=0)


class TestCluster:
    def test_allocate_and_release(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=4))
        assert cluster.free_nodes() == 4
        assert cluster.try_allocate(3)
        assert cluster.free_nodes() == 1
        assert not cluster.try_allocate(2)
        cluster.release(3)
        assert cluster.free_nodes() == 4

    def test_over_release_rejected(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=2))
        with pytest.raises(ValueError):
            cluster.release(1)

    def test_request_exceeding_cluster_rejected(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=2))
        with pytest.raises(ValueError):
            cluster.try_allocate(3)

    def test_zero_request_rejected(self):
        cluster = Cluster(ClusterSpec("c", n_nodes=2))
        with pytest.raises(ValueError):
            cluster.try_allocate(0)

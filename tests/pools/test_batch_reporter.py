"""The pool's shared batch reporter.

With ``report_batch_size > 1`` workers hand results to one flusher that
reports them in ``report_batch`` store operations — results must still
all arrive, single results must not stall past the linger, and a broken
batch path must degrade to per-item reports rather than lose results.
"""

from __future__ import annotations

import time

import pytest

from repro.core import EQSQL, RemoteTaskStore, TaskService, as_completed
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool


def batched_config(**overrides):
    defaults = dict(
        work_type=0,
        n_workers=4,
        batch_size=8,
        poll_delay=0.001,
        report_batch_size=8,
        report_linger=0.01,
    )
    defaults.update(overrides)
    return PoolConfig(**defaults)


class TestBatchedReporting:
    def test_all_results_arrive(self):
        eq = EQSQL(MemoryTaskStore())
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), batched_config()
        ).start()
        try:
            futures = eq.submit_tasks("exp", 0, [f'{{"i": {i}}}' for i in range(40)])
            done = list(as_completed(futures, delay=0.001, timeout=30))
            assert len(done) == 40
        finally:
            pool.stop()
            eq.close()
        assert pool.tasks_completed == 40
        assert pool.reports_lost == 0
        assert pool.owned() == 0

    def test_single_result_beats_linger_stall(self):
        # One lone task must flush at the linger bound, not wait for a
        # full batch that will never fill.
        eq = EQSQL(MemoryTaskStore())
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: d),
            batched_config(report_batch_size=64, report_linger=0.02),
        ).start()
        try:
            future = eq.submit_task("exp", 0, "{}")
            t0 = time.monotonic()
            status, _result = future.result(timeout=10)
            elapsed = time.monotonic() - t0
            assert status.value == "success"
            assert elapsed < 5.0
        finally:
            pool.stop()
            eq.close()

    def test_failed_batch_falls_back_to_single_reports(self):
        class BatchPathDown(MemoryTaskStore):
            def report_batch(self, reports, *, now=0.0, profiles=None):
                raise ConnectionError("batch path down")

        eq = EQSQL(BatchPathDown())
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), batched_config()
        ).start()
        try:
            futures = eq.submit_tasks("exp", 0, ["{}"] * 16)
            done = list(as_completed(futures, delay=0.001, timeout=30))
            assert len(done) == 16
        finally:
            pool.stop()
            eq.close()
        assert pool.tasks_completed == 16
        assert pool.reports_lost == 0

    def test_batched_pool_over_remote_store(self):
        backing = MemoryTaskStore()
        service = TaskService(backing).start()
        store = RemoteTaskStore(*service.address)
        eq = EQSQL(store)
        pool = ThreadedWorkerPool(
            eq, PythonTaskHandler(lambda d: d), batched_config()
        ).start()
        try:
            futures = eq.submit_tasks("exp", 0, ["{}"] * 32)
            done = list(as_completed(futures, delay=0.001, timeout=30))
            assert len(done) == 32
        finally:
            pool.stop()
            eq.close()
            service.stop()
            backing.close()
        assert pool.tasks_completed == 32


class TestConfigValidation:
    def test_rejects_zero_batch_size(self):
        with pytest.raises(ValueError, match="report_batch_size"):
            PoolConfig(work_type=0, report_batch_size=0)

    def test_rejects_nonpositive_linger(self):
        with pytest.raises(ValueError, match="report_linger"):
            PoolConfig(work_type=0, report_linger=0.0)

    def test_rejects_memory_profiling_without_profiling(self):
        with pytest.raises(ValueError, match="profile_memory"):
            PoolConfig(work_type=0, profile_memory=True)

    def test_rejects_nonpositive_telemetry_interval(self):
        with pytest.raises(ValueError, match="telemetry_interval"):
            PoolConfig(work_type=0, telemetry_interval=0.0)

    def test_default_stays_synchronous(self):
        pool = ThreadedWorkerPool(
            EQSQL(MemoryTaskStore()),
            PythonTaskHandler(lambda d: d),
            PoolConfig(work_type=0),
        )
        assert pool._reporter is None  # the pre-batching path, unchanged

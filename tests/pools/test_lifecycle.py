"""Tests for fabric-driven component lifecycle (§IV-B start/stop)."""

from __future__ import annotations

import json

import pytest

from repro.core import EQSQL, RemoteTaskStore
from repro.fabric import CloudBroker, Endpoint, FabricClient
from repro.pools import lifecycle
from repro.util.errors import InvalidStateError, NotFoundError
from repro.util.ids import short_id


@pytest.fixture(autouse=True)
def clean_site():
    yield
    lifecycle.shutdown_site()


def square_task(d):
    return {"y": d["x"] ** 2}


class TestLocalLifecycle:
    def test_db_start_get_stop(self):
        name = short_id("db")
        lifecycle.start_emews_db(name)
        eqsql = lifecycle.get_eqsql(name)
        eqsql.submit_task("e", 0, "p")
        assert lifecycle.stop_emews_db(name)
        assert not lifecycle.stop_emews_db(name)
        with pytest.raises(NotFoundError):
            lifecycle.get_eqsql(name)

    def test_duplicate_db_rejected(self):
        name = short_id("db")
        lifecycle.start_emews_db(name)
        with pytest.raises(InvalidStateError):
            lifecycle.start_emews_db(name)

    def test_service_round_trip(self):
        name = short_id("db")
        lifecycle.start_emews_db(name)
        host, port = lifecycle.start_emews_service(name, auth_token="tok")
        remote = RemoteTaskStore(host, port, auth_token="tok")
        eq = EQSQL(remote)
        future = eq.submit_task("e", 0, "payload")
        assert lifecycle.get_eqsql(name).queue_lengths(0)[0] == 1
        assert future.status.label() == "queued"
        remote.close()
        assert lifecycle.stop_emews_service(name)

    def test_pool_lifecycle_and_status(self):
        name = short_id("db")
        pool_name = short_id("pool")
        lifecycle.start_emews_db(name)
        eqsql = lifecycle.get_eqsql(name)
        futures = eqsql.submit_tasks(
            "e", 0, [json.dumps({"x": i}) for i in range(6)]
        )
        lifecycle.start_worker_pool(name, pool_name, 0, square_task, n_workers=2)
        from repro.core import as_completed

        done = list(as_completed(futures, timeout=20, delay=0.01))
        assert len(done) == 6
        status = lifecycle.pool_status(pool_name)
        assert status["completed"] == 6
        assert lifecycle.stop_worker_pool(pool_name)
        assert not lifecycle.stop_worker_pool(pool_name)

    def test_pool_requires_db(self):
        with pytest.raises(NotFoundError):
            lifecycle.start_worker_pool("ghost-db", "p", 0, square_task)

    def test_shutdown_site_counts(self):
        a, b = short_id("db"), short_id("db")
        lifecycle.start_emews_db(a)
        lifecycle.start_emews_db(b)
        lifecycle.start_emews_service(a)
        counts = lifecycle.shutdown_site()
        assert counts == {"pools": 0, "services": 1, "databases": 2}


class TestThroughFabric:
    def test_paper_flow_start_components_remotely(self):
        """§VI: 'initializing a funcX client, and then starting the
        EMEWS DB, an initial worker pool, and the EMEWS service remotely
        on Bebop using funcX'."""
        broker = CloudBroker()
        endpoint = Endpoint(broker, "bebop", "tok").start()
        client = FabricClient(broker, "tok")
        db_name = short_id("db")
        pool_name = short_id("pool")
        try:
            client.run(
                lifecycle.start_emews_db, db_name, endpoint=endpoint.endpoint_id, timeout=20
            )
            host, port = client.run(
                lifecycle.start_emews_service, db_name,
                endpoint=endpoint.endpoint_id, timeout=20,
            )
            client.run(
                lifecycle.start_worker_pool, db_name, pool_name, 0, square_task,
                endpoint=endpoint.endpoint_id, timeout=20,
            )
            # ME side: talk to the service over TCP, as the paper does
            # through its SSH tunnel.
            remote = RemoteTaskStore(host, int(port))
            eq = EQSQL(remote)
            future = eq.submit_task("exp", 0, json.dumps({"x": 7}))
            status, result = future.result(timeout=20, delay=0.02)
            assert json.loads(result) == {"y": 49}
            remote.close()
            # Tear down through the fabric too.
            assert client.run(
                lifecycle.stop_worker_pool, pool_name,
                endpoint=endpoint.endpoint_id, timeout=20,
            )
        finally:
            endpoint.stop()

"""Tests for task application handlers."""

from __future__ import annotations

import json
import sys

import pytest

from repro.pools import (
    AppTaskHandler,
    HandlerRegistry,
    ParTaskHandler,
    PythonTaskHandler,
    TaskExecutionError,
)


class TestPythonTaskHandler:
    def test_json_io(self):
        handler = PythonTaskHandler(lambda d: {"sum": d["a"] + d["b"]})
        assert json.loads(handler.handle('{"a": 2, "b": 3}')) == {"sum": 5}

    def test_raw_io(self):
        handler = PythonTaskHandler(lambda s: s.upper(), json_io=False)
        assert handler.handle("abc") == "ABC"

    def test_callable_sugar(self):
        handler = PythonTaskHandler(lambda d: d)
        assert handler('{"x": 1}') == '{"x":1}'

    def test_function_error_wrapped(self):
        handler = PythonTaskHandler(lambda d: 1 / 0)
        with pytest.raises(TaskExecutionError, match="python task failed"):
            handler.handle("{}")

    def test_bad_json_payload_wrapped(self):
        handler = PythonTaskHandler(lambda d: d)
        with pytest.raises(TaskExecutionError):
            handler.handle("{bad json")


class TestAppTaskHandler:
    def test_runs_command_and_captures_stdout(self):
        handler = AppTaskHandler(
            f"{sys.executable} -c \"import sys; print(len(sys.argv[1]))\" {{payload}}"
        )
        assert handler.handle("hello") == "5"

    def test_payload_is_shell_quoted(self):
        handler = AppTaskHandler(
            f"{sys.executable} -c \"import sys; print(sys.argv[1])\" {{payload}}"
        )
        tricky = "a b; echo injected"
        assert handler.handle(tricky) == tricky

    def test_missing_placeholder_rejected(self):
        with pytest.raises(ValueError):
            AppTaskHandler("echo hi")

    def test_nonzero_exit_raises_with_stderr(self):
        handler = AppTaskHandler(
            f"{sys.executable} -c \"import sys; sys.exit('bad input')\" {{payload}}"
        )
        with pytest.raises(TaskExecutionError, match="bad input"):
            handler.handle("x")

    def test_timeout(self):
        handler = AppTaskHandler(
            f"{sys.executable} -c \"import time; time.sleep(5)\" {{payload}}",
            timeout=0.2,
        )
        with pytest.raises(TaskExecutionError, match="timed out"):
            handler.handle("x")


class TestParTaskHandler:
    def test_parallel_reduction(self):
        import operator

        def program(comm, payload):
            # Each rank contributes payload["x"] * rank; rank 0 reports.
            total = comm.allreduce(payload["x"] * comm.rank, operator.add)
            return {"total": total}

        handler = ParTaskHandler(program, procs=4)
        result = json.loads(handler.handle('{"x": 2}'))
        assert result == {"total": 2 * (0 + 1 + 2 + 3)}

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            ParTaskHandler(lambda comm, p: None, procs=0)

    def test_rank_failure_wrapped(self):
        def program(comm, payload):
            if comm.rank == 1:
                raise RuntimeError("rank exploded")
            return None

        handler = ParTaskHandler(program, procs=2)
        with pytest.raises(TaskExecutionError, match="@par task failed"):
            handler.handle("{}")


class TestHandlerRegistry:
    def test_register_and_lookup(self):
        registry = HandlerRegistry()
        h = PythonTaskHandler(lambda d: d)
        registry.register(3, h)
        assert registry.handler_for(3) is h
        assert registry.work_types() == [3]

    def test_duplicate_rejected(self):
        registry = HandlerRegistry()
        registry.register(0, PythonTaskHandler(lambda d: d))
        with pytest.raises(ValueError):
            registry.register(0, PythonTaskHandler(lambda d: d))

    def test_missing_type(self):
        with pytest.raises(KeyError):
            HandlerRegistry().handler_for(9)

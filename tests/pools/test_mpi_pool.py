"""Tests for the Swift/T-style MPI worker pool."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import EQSQL, EQ_STOP
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, run_mpi_pool
from repro.telemetry import EventKind, TraceCollector


@pytest.fixture
def eq():
    eqsql = EQSQL(MemoryTaskStore())
    yield eqsql
    eqsql.close()


def submit_with_stop(eq, n, eq_type=0):
    futures = eq.submit_tasks(
        "exp", eq_type, [json.dumps({"x": i}) for i in range(n)]
    )
    eq.submit_task("exp", eq_type, EQ_STOP, priority=-100)
    return futures


class TestMpiPool:
    def test_runs_all_tasks_then_stops(self, eq):
        futures = submit_with_stop(eq, 20)
        config = PoolConfig(work_type=0, n_workers=3, name="mpi-pool")
        handler = PythonTaskHandler(lambda d: {"y": d["x"] + 1})
        stats = run_mpi_pool(eq, handler, config, timeout=60)
        assert stats.tasks_completed == 20
        assert stats.tasks_failed == 0
        for f in futures:
            _, result = f.result(timeout=0)
            x = json.loads(eq.task_info(f.eq_task_id).json_out)["x"]
            assert json.loads(result) == {"y": x + 1}

    def test_failures_counted(self, eq):
        submit_with_stop(eq, 4)

        def flaky(d):
            if d["x"] >= 2:
                raise RuntimeError("boom")
            return d

        config = PoolConfig(work_type=0, n_workers=2)
        stats = run_mpi_pool(eq, PythonTaskHandler(flaky), config, timeout=60)
        assert stats.tasks_completed == 2
        assert stats.tasks_failed == 2

    def test_trace_records_pool_lifecycle(self, eq):
        submit_with_stop(eq, 6)
        trace = TraceCollector()
        config = PoolConfig(work_type=0, n_workers=2, name="traced-mpi")
        run_mpi_pool(eq, PythonTaskHandler(lambda d: d), config, trace=trace, timeout=60)
        starts = trace.filter(kind=EventKind.TASK_START, source="traced-mpi")
        stops = trace.filter(kind=EventKind.TASK_STOP, source="traced-mpi")
        assert len(starts) == 6 and len(stops) == 6
        kinds = [e.kind for e in trace.snapshot()]
        assert kinds[0] == EventKind.POOL_START
        assert kinds[-1] == EventKind.POOL_STOP

    def test_worker_pool_recorded_in_db(self, eq):
        futures = submit_with_stop(eq, 3)
        config = PoolConfig(work_type=0, n_workers=2, name="mpi-name")
        run_mpi_pool(eq, PythonTaskHandler(lambda d: d), config, timeout=60)
        assert eq.task_info(futures[0].eq_task_id).worker_pool == "mpi-name"

    def test_concurrent_with_submitter_thread(self, eq):
        """Tasks submitted while the pool runs are still executed."""
        first = submit_with_stop(eq, 0)  # just the EQ_STOP, lowest priority
        del first
        late_futures = []

        def submitter():
            for i in range(10):
                late_futures.append(
                    eq.submit_task("exp", 0, json.dumps({"x": i}), priority=1)
                )

        t = threading.Thread(target=submitter)
        t.start()
        config = PoolConfig(work_type=0, n_workers=2)
        stats = run_mpi_pool(eq, PythonTaskHandler(lambda d: d), config, timeout=60)
        t.join()
        # The pool may pop EQ_STOP before some late tasks; at least the
        # ones submitted before the sentinel was popped completed.
        assert stats.tasks_completed + eq.queue_lengths(0)[0] == 10

"""End-to-end tests for the threaded worker pool."""

from __future__ import annotations

import json

import pytest

from repro.core import EQSQL, EQ_STOP, ResultStatus, as_completed
from repro.core.constants import EQ_ABORT
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.telemetry import EventKind, TraceCollector


@pytest.fixture
def eq():
    eqsql = EQSQL(MemoryTaskStore())
    yield eqsql
    eqsql.close()


def square_handler():
    return PythonTaskHandler(lambda d: {"y": d["x"] ** 2})


def submit_squares(eq, n, eq_type=0):
    payloads = [json.dumps({"x": i}) for i in range(n)]
    return eq.submit_tasks("exp", eq_type, payloads)


class TestExecution:
    def test_executes_all_tasks(self, eq):
        futures = submit_squares(eq, 25)
        config = PoolConfig(work_type=0, n_workers=4)
        pool = ThreadedWorkerPool(eq, square_handler(), config).start()
        done = list(as_completed(futures, timeout=20, delay=0.01))
        assert len(done) == 25
        for f in done:
            status, result = f.result(timeout=0)
            assert status == ResultStatus.SUCCESS
            x = json.loads(eq.task_info(f.eq_task_id).json_out)["x"]
            assert json.loads(result) == {"y": x**2}
        pool.stop()
        assert pool.tasks_completed == 25
        assert pool.tasks_failed == 0

    def test_only_consumes_own_work_type(self, eq):
        mine = submit_squares(eq, 3, eq_type=1)
        theirs = submit_squares(eq, 3, eq_type=2)
        config = PoolConfig(work_type=1, n_workers=2)
        with ThreadedWorkerPool(eq, square_handler(), config):
            done = list(as_completed(mine, timeout=10, delay=0.01))
            assert len(done) == 3
        # Other work type untouched.
        assert eq.queue_lengths(2)[0] == 3
        assert all(not f.done() for f in theirs)

    def test_failed_task_reports_error_payload(self, eq):
        def sometimes_fail(d):
            if d["x"] % 2 == 0:
                raise ValueError("even input")
            return {"ok": d["x"]}

        futures = submit_squares(eq, 6)
        config = PoolConfig(work_type=0, n_workers=2)
        pool = ThreadedWorkerPool(eq, PythonTaskHandler(sometimes_fail), config).start()
        done = list(as_completed(futures, timeout=10, delay=0.01))
        pool.stop()
        errors = 0
        for f in done:
            _, result = f.result(timeout=0)
            if "error" in json.loads(result):
                errors += 1
        assert errors == 3
        assert pool.tasks_failed == 3
        assert pool.tasks_completed == 3

    def test_worker_pool_name_recorded(self, eq):
        futures = submit_squares(eq, 2)
        config = PoolConfig(work_type=0, n_workers=1, name="bebop-pool")
        with ThreadedWorkerPool(eq, square_handler(), config):
            list(as_completed(futures, timeout=10, delay=0.01))
        assert eq.task_info(futures[0].eq_task_id).worker_pool == "bebop-pool"


class TestShutdown:
    def test_eq_stop_drains_and_stops(self, eq):
        futures = submit_squares(eq, 10)
        stop_future = eq.submit_task("exp", 0, EQ_STOP, priority=-100)
        config = PoolConfig(work_type=0, n_workers=3)
        pool = ThreadedWorkerPool(eq, square_handler(), config).start()
        # EQ_STOP has the lowest priority: all real tasks complete first.
        done = list(as_completed(futures, timeout=20, delay=0.01))
        assert len(done) == 10
        assert stop_future.result(timeout=10, delay=0.01) == (
            ResultStatus.SUCCESS,
            EQ_STOP,
        )
        pool.join(timeout=10)
        assert not pool.is_alive()

    def test_eq_abort_stops_quickly(self, eq):
        eq.submit_task("exp", 0, EQ_ABORT, priority=100)
        submit_squares(eq, 5)
        config = PoolConfig(work_type=0, n_workers=2)
        pool = ThreadedWorkerPool(eq, square_handler(), config).start()
        pool.join(timeout=10)
        assert not pool.is_alive()

    def test_explicit_stop(self, eq):
        config = PoolConfig(work_type=0, n_workers=2)
        pool = ThreadedWorkerPool(eq, square_handler(), config).start()
        pool.stop(timeout=10)
        assert not pool.is_alive()

    def test_double_start_rejected(self, eq):
        config = PoolConfig(work_type=0, n_workers=1)
        pool = ThreadedWorkerPool(eq, square_handler(), config).start()
        with pytest.raises(RuntimeError):
            pool.start()
        pool.stop()


class TestPolicyBehaviour:
    def test_owned_never_exceeds_batch(self, eq):
        import threading

        observed_max = 0
        lock = threading.Lock()

        def slow(d):
            nonlocal observed_max
            with lock:
                observed_max = max(observed_max, pool.owned())
            return d

        submit_squares(eq, 30)
        config = PoolConfig(work_type=0, n_workers=2, batch_size=5)
        pool = ThreadedWorkerPool(eq, PythonTaskHandler(slow), config).start()
        while eq.queue_lengths(0)[0] > 0 or pool.owned() > 0:
            eq.clock.sleep(0.01)
        pool.stop()
        assert observed_max <= 5

    def test_trace_events_recorded(self, eq):
        trace = TraceCollector()
        futures = submit_squares(eq, 8)
        config = PoolConfig(work_type=0, n_workers=2, name="traced")
        pool = ThreadedWorkerPool(eq, square_handler(), config, trace=trace).start()
        list(as_completed(futures, timeout=10, delay=0.01))
        pool.stop()
        starts = trace.filter(kind=EventKind.TASK_START, source="traced")
        stops = trace.filter(kind=EventKind.TASK_STOP, source="traced")
        assert len(starts) == 8 and len(stops) == 8
        fetches = trace.filter(kind=EventKind.FETCH)
        assert sum(int(e.detail) for e in fetches) >= 8
        kinds = {e.kind for e in trace.snapshot()}
        assert EventKind.POOL_START in kinds and EventKind.POOL_STOP in kinds


class TestMultiplePools:
    def test_two_pools_share_queue_equitably(self, eq):
        futures = submit_squares(eq, 40)
        pool_a = ThreadedWorkerPool(
            eq, square_handler(), PoolConfig(work_type=0, n_workers=2, name="a")
        ).start()
        pool_b = ThreadedWorkerPool(
            eq, square_handler(), PoolConfig(work_type=0, n_workers=2, name="b")
        ).start()
        done = list(as_completed(futures, timeout=20, delay=0.01))
        pool_a.stop()
        pool_b.stop()
        assert len(done) == 40
        pools = {eq.task_info(f.eq_task_id).worker_pool for f in done}
        assert pools == {"a", "b"}  # both pools did work
        assert pool_a.tasks_completed + pool_b.tasks_completed == 40

"""Property: concurrent dataflow execution equals sequential evaluation.

For random DAGs of pure arithmetic nodes, the engine's results must be
exactly those of a sequential topological-order evaluation, at any
worker count — the determinism that makes dataflow workflows shareable.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dataflow import DataflowEngine, TaskGraph


def sequential_eval(nodes):
    """nodes: list of (name, deps, op_code, constant). Returns results."""
    results = {}
    for name, deps, op_code, constant in nodes:
        values = [results[d] for d in deps]
        if op_code == 0:
            results[name] = constant + sum(values)
        elif op_code == 1:
            results[name] = constant + (max(values) if values else 0)
        else:
            results[name] = constant * (len(values) + 1) - sum(values)
    return results


def make_fn(op_code, constant):
    if op_code == 0:
        return lambda *v: constant + sum(v)
    if op_code == 1:
        return lambda *v: constant + (max(v) if v else 0)
    return lambda *v: constant * (len(v) + 1) - sum(v)


@st.composite
def random_dag(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    nodes = []
    for i in range(n):
        name = f"n{i}"
        max_deps = min(i, 3)
        k = draw(st.integers(min_value=0, max_value=max_deps))
        # Deterministically pick k distinct earlier nodes.
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=max(i - 1, 0)),
                min_size=k,
                max_size=k,
                unique=True,
            )
        ) if i > 0 else []
        deps = [f"n{j}" for j in indices]
        op_code = draw(st.integers(min_value=0, max_value=2))
        constant = draw(st.integers(min_value=-50, max_value=50))
        nodes.append((name, deps, op_code, constant))
    return nodes


@settings(max_examples=40, deadline=None)
@given(nodes=random_dag(), workers=st.integers(min_value=1, max_value=8))
def test_engine_matches_sequential(nodes, workers):
    graph = TaskGraph()
    for name, deps, op_code, constant in nodes:
        graph.add(name, make_fn(op_code, constant), deps=deps)
    run = DataflowEngine(max_workers=workers).run(graph)
    assert run.results == sequential_eval(nodes)
    assert run.ok()


@settings(max_examples=20, deadline=None)
@given(nodes=random_dag())
def test_engine_deterministic_across_worker_counts(nodes):
    graph1 = TaskGraph()
    graph2 = TaskGraph()
    for name, deps, op_code, constant in nodes:
        graph1.add(name, make_fn(op_code, constant), deps=deps)
        graph2.add(name, make_fn(op_code, constant), deps=deps)
    one = DataflowEngine(max_workers=1).run(graph1)
    many = DataflowEngine(max_workers=6).run(graph2)
    assert one.results == many.results

"""Tests for dataflow task graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import CycleError, TaskGraph


def noop():
    return None


class TestBuild:
    def test_add_and_lookup(self):
        g = TaskGraph()
        node = g.add("a", noop)
        assert g.node("a") is node
        assert "a" in g
        assert len(g) == 1

    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add("a", noop)
        with pytest.raises(ValueError):
            g.add("a", noop)

    def test_unknown_dep_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("b", noop, deps=["missing"])

    def test_roots_and_leaves(self):
        g = TaskGraph()
        g.add("a", noop)
        g.add("b", noop)
        g.add("c", noop, deps=["a", "b"])
        assert sorted(g.roots()) == ["a", "b"]
        assert g.leaves() == ["c"]

    def test_merge_with_prefix(self):
        inner = TaskGraph()
        inner.add("x", noop)
        inner.add("y", noop, deps=["x"])
        g = TaskGraph()
        g.add("x", noop)
        g.merge(inner, prefix="sub.")
        assert "sub.x" in g and "sub.y" in g
        assert g.node("sub.y").deps == ("sub.x",)

    def test_merge_collision_rejected(self):
        inner = TaskGraph()
        inner.add("x", noop)
        g = TaskGraph()
        g.add("x", noop)
        with pytest.raises(ValueError):
            g.merge(inner)


class TestTopology:
    def test_topological_order_respects_deps(self):
        g = TaskGraph()
        g.add("a", noop)
        g.add("b", noop, deps=["a"])
        g.add("c", noop, deps=["a"])
        g.add("d", noop, deps=["b", "c"])
        order = g.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_cycle_detected_after_merge(self):
        # add() cannot form cycles, but merge() can stitch them.
        a = TaskGraph()
        a.add("x", noop)
        a.add("y", noop, deps=["x"])
        # Manually wire a back-edge to simulate a corrupt merge source.
        a._nodes["x"].deps = ("y",)  # type: ignore[attr-defined]
        with pytest.raises(CycleError):
            a.topological_order()

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=25),
        edge_seed=st.randoms(use_true_random=False),
    )
    def test_random_dags_always_sort(self, n, edge_seed):
        g = TaskGraph()
        names = [f"n{i}" for i in range(n)]
        for i, name in enumerate(names):
            candidates = names[:i]
            k = edge_seed.randint(0, min(3, len(candidates)))
            deps = edge_seed.sample(candidates, k)
            g.add(name, noop, deps=deps)
        order = g.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for node in g.nodes():
            for dep in node.deps:
                assert pos[dep] < pos[node.name]

"""Tests for the dataflow engine."""

from __future__ import annotations

import threading
import time

import pytest

from repro.dataflow import DataflowEngine, NodeFailedError, NodeState, TaskGraph


class TestExecution:
    def test_results_flow_through_deps(self):
        g = TaskGraph()
        g.add("two", lambda: 2)
        g.add("three", lambda: 3)
        g.add("product", lambda a, b: a * b, deps=["two", "three"])
        g.add("square", lambda p: p * p, deps=["product"])
        run = DataflowEngine().run(g)
        assert run.results["product"] == 6
        assert run.results["square"] == 36
        assert run.ok()

    def test_empty_graph(self):
        run = DataflowEngine().run(TaskGraph())
        assert run.results == {}
        assert run.ok()

    def test_single_node(self):
        g = TaskGraph()
        g.add("only", lambda: "v")
        assert DataflowEngine(max_workers=1).run(g).results == {"only": "v"}

    def test_independent_nodes_run_concurrently(self):
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous():
            barrier.wait()
            return True

        g = TaskGraph()
        for i in range(3):
            g.add(f"n{i}", rendezvous)
        run = DataflowEngine(max_workers=4).run(g)
        assert all(run.results.values())

    def test_dependency_ordering_observed(self):
        events: list[str] = []
        lock = threading.Lock()

        def logged(name, delay=0.0):
            def fn(*_args):
                time.sleep(delay)
                with lock:
                    events.append(name)
                return name

            return fn

        g = TaskGraph()
        g.add("slow-root", logged("slow-root", 0.05))
        g.add("child", logged("child"), deps=["slow-root"])
        DataflowEngine(max_workers=4).run(g)
        assert events == ["slow-root", "child"]

    def test_diamond_fanin(self):
        g = TaskGraph()
        g.add("src", lambda: 1)
        g.add("l", lambda x: x + 10, deps=["src"])
        g.add("r", lambda x: x + 100, deps=["src"])
        g.add("sink", lambda a, b: a + b, deps=["l", "r"])
        assert DataflowEngine().run(g).results["sink"] == 112

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError):
            DataflowEngine(max_workers=0)


class TestFailure:
    def build_failing_graph(self):
        g = TaskGraph()
        g.add("ok", lambda: 1)
        g.add("boom", lambda: 1 / 0)
        g.add("downstream", lambda v: v, deps=["boom"])
        g.add("transitive", lambda v: v, deps=["downstream"])
        g.add("independent", lambda: "fine")
        return g

    def test_failure_raises_by_default(self):
        with pytest.raises(NodeFailedError) as info:
            DataflowEngine().run(self.build_failing_graph())
        assert set(info.value.errors) == {"boom"}

    def test_failure_states_without_raise(self):
        run = DataflowEngine().run(self.build_failing_graph(), raise_on_failure=False)
        assert run.states["boom"] == NodeState.FAILED
        assert run.states["downstream"] == NodeState.SKIPPED
        assert run.states["transitive"] == NodeState.SKIPPED
        assert run.states["ok"] == NodeState.DONE
        assert run.states["independent"] == NodeState.DONE
        assert isinstance(run.errors["boom"], ZeroDivisionError)
        assert not run.ok()

    def test_partial_dep_failure_skips_join_node(self):
        g = TaskGraph()
        g.add("good", lambda: 1)
        g.add("bad", lambda: 1 / 0)
        g.add("join", lambda a, b: a + b, deps=["good", "bad"])
        run = DataflowEngine().run(g, raise_on_failure=False)
        assert run.states["join"] == NodeState.SKIPPED
        assert "join" not in run.results

    def test_two_failures(self):
        g = TaskGraph()
        g.add("f1", lambda: 1 / 0)
        g.add("f2", lambda: [][1])
        run = DataflowEngine().run(g, raise_on_failure=False)
        assert run.states == {"f1": NodeState.FAILED, "f2": NodeState.FAILED}


class TestScale:
    def test_wide_graph(self):
        g = TaskGraph()
        for i in range(200):
            g.add(f"n{i}", lambda i=i: i)
        g.add("sum", lambda *vals: sum(vals), deps=[f"n{i}" for i in range(200)])
        run = DataflowEngine(max_workers=16).run(g)
        assert run.results["sum"] == sum(range(200))

    def test_deep_chain(self):
        g = TaskGraph()
        g.add("n0", lambda: 0)
        for i in range(1, 150):
            g.add(f"n{i}", lambda x: x + 1, deps=[f"n{i-1}"])
        run = DataflowEngine(max_workers=2).run(g)
        assert run.results["n149"] == 149

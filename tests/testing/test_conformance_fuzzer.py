"""The cross-backend conformance harness, plus the regressions it proved.

The fuzzer tests run the real seeded schedules (shorter than the CLI
defaults, fixed seeds, so CI time stays bounded); the regression tests
pin the specific semantic bugs this harness surfaced — requeue priority
demotion and duplicate-id lease renewal — as plain, readable examples.
"""

from __future__ import annotations

import pytest

from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.testing.conformance import (
    ModelStore,
    ScheduleConfig,
    ScheduleEngine,
    check_journal_invariants,
    run_seed,
)
from repro.testing.conformance.runner import open_path
from repro.telemetry.journal import EV_REPORT, ROLE_DB, Journal
from repro.util.clock import VirtualClock

#: A three-path seed run spins up a live TaskService; keep the pytest
#: seed set small (CI runs the full 25-seed sweep via the CLI job).
LOCAL_SEEDS = (0, 7, 13, 42)
REMOTE_SEEDS = (13, 42)


@pytest.mark.parametrize("seed", LOCAL_SEEDS)
def test_memory_sqlite_conformance(seed):
    result = run_seed(seed, paths=("memory", "sqlite"))
    assert result.ok, "\n".join(result.violations)
    assert result.operations > 0


@pytest.mark.parametrize("seed", REMOTE_SEEDS)
def test_all_paths_conformance(seed):
    result = run_seed(
        seed, config=ScheduleConfig(steps=100)
    )
    assert result.paths == ("memory", "sqlite", "remote")
    assert result.ok, "\n".join(result.violations)


def test_violation_replays_from_seed():
    """The same seed produces the same schedule, byte for byte."""
    first = run_seed(3, paths=("memory",))
    second = run_seed(3, paths=("memory",))
    assert first.ok and second.ok
    assert first.operations == second.operations


def test_engine_detects_seeded_divergence():
    """A store that lies about pop order is caught immediately."""

    class LyingStore(MemoryTaskStore):
        def pop_out(self, eq_type, n=1, **kwargs):
            popped = super().pop_out(eq_type, n, **kwargs)
            return list(reversed(popped))

    from repro.testing.conformance import ConformanceViolation

    engine = ScheduleEngine(LyingStore(), seed=0)
    with pytest.raises(ConformanceViolation) as excinfo:
        engine.run()
    assert excinfo.value.seed == 0
    assert "pop" in excinfo.value.op


def test_journal_invariant_checker_flags_double_report():
    journal = Journal(clock=VirtualClock(), enabled=True)
    from repro.telemetry.journal import EV_ENQUEUE, EV_POP

    journal.emit(EV_ENQUEUE, 1, role=ROLE_DB, time=0.0)
    journal.emit(EV_POP, 1, role=ROLE_DB, time=1.0)
    journal.emit(EV_REPORT, 1, role=ROLE_DB, time=2.0)
    journal.emit(EV_REPORT, 1, role=ROLE_DB, time=3.0)
    violations = check_journal_invariants(journal.records())
    assert any("exactly-once" in v or "after terminal" in v for v in violations)


def test_model_matches_contract_docs():
    """Sanity: the reference model's own pop order is the documented one."""
    model = ModelStore()
    model.create_tasks(0, ["a", "b", "c"], [1, 5, 5])
    ids = [tid for tid, _ in model.pop_out(
        0, 3, worker_pool="p", now=0.0, lease=None
    )]
    assert ids == [2, 3, 1]  # priority DESC, id ASC


# -- regressions the fuzzer surfaced ------------------------------------


@pytest.mark.parametrize("path", ["memory", "sqlite", "remote"])
def test_requeue_restores_priority_over_queued_zeros(path):
    """A lease-expired priority-10 task requeues AHEAD of priority-0 tasks.

    The original bug: requeue_expired defaulted to priority=0, silently
    demoting exactly the tasks the ME had promoted (ISSUE 7).
    """
    with open_path(path, Journal(enabled=False)) as store:
        low = store.create_tasks(
            "exp", 0, ["low-1", "low-2"], priority=0, time_created=0.0
        )
        [hot] = store.create_tasks(
            "exp", 0, ["hot"], priority=10, time_created=0.0
        )
        popped = store.pop_out(0, 1, worker_pool="doomed", now=1.0, lease=5.0)
        assert [tid for tid, _ in popped] == [hot]
        # The pool dies; the lease lapses; the reaper sweeps.
        requeued = store.requeue_expired(now=10.0)
        assert requeued == [hot]
        # The recovered task must still outrank the queued priority-0 set.
        popped = store.pop_out(0, 3, worker_pool="live", now=11.0)
        assert [tid for tid, _ in popped] == [hot, *low]
        assert store.get_task(hot).eq_priority == 10


def test_requeue_explicit_priority_still_wins(store):
    [tid] = store.create_tasks("exp", 0, ["t"], priority=10, time_created=0.0)
    store.pop_out(0, 1, worker_pool="p", now=1.0, lease=5.0)
    assert store.requeue_expired(now=10.0, priority=2) == [tid]
    assert store.get_priorities([tid]) == [(tid, 2)]
    # The explicit value becomes the new sticky priority.
    assert store.get_task(tid).eq_priority == 2


def test_requeue_restores_updated_priority(store):
    """update_priorities refreshes the sticky value requeue restores."""
    [tid] = store.create_tasks("exp", 0, ["t"], priority=1, time_created=0.0)
    assert store.update_priorities([tid], 7) == 1
    store.pop_out(0, 1, worker_pool="p", now=1.0, lease=5.0)
    assert store.requeue_expired(now=10.0) == [tid]
    assert store.get_priorities([tid]) == [(tid, 7)]


def test_renew_duplicate_ids_count_once(store):
    """Found by the fuzzer: a pool that re-popped its own requeued task
    holds the id twice; renewing must count one lease, not two."""
    [tid] = store.create_tasks("exp", 0, ["t"], priority=0, time_created=0.0)
    store.pop_out(0, 1, worker_pool="p", now=0.0, lease=5.0)
    assert store.renew_leases([tid, tid, tid], now=1.0, lease=5.0) == 1


@pytest.mark.parametrize("path", ["memory", "sqlite", "remote"])
def test_pop_order_parity_after_update_priorities(path):
    """Priority tie-break (eq_priority DESC, eq_task_id ASC) holds on
    every access path after a reprioritization shuffles the queue."""
    with open_path(path, Journal(enabled=False)) as store:
        ids = store.create_tasks(
            "exp", 0, [f"t{i}" for i in range(6)],
            priority=[3, 1, 4, 1, 5, 9], time_created=0.0,
        )
        # Promote two mid-queue tasks into a tie with the leader.
        assert store.update_priorities([ids[1], ids[3]], 9) == 2
        popped = [tid for tid, _ in store.pop_out(0, 6, worker_pool="p", now=1.0)]
        # Ties at 9: ids[1] < ids[3] < ids[5]; then 5, 4, 3.
        assert popped == [ids[1], ids[3], ids[5], ids[4], ids[2], ids[0]]


@pytest.mark.parametrize("path", ["memory", "sqlite", "remote"])
def test_pop_in_any_order_parity(path):
    """pop_in_any returns caller id order and respects limit identically
    across memory, sqlite, and the remote service path."""
    with open_path(path, Journal(enabled=False)) as store:
        ids = store.create_tasks(
            "exp", 0, ["a", "b", "c", "d"], priority=0, time_created=0.0
        )
        store.pop_out(0, 4, worker_pool="p", now=0.0)
        for tid in ids:
            store.report(tid, 0, f"r{tid}", now=1.0)
        probe = [ids[2], ids[0], ids[3], ids[1]]
        first = store.pop_in_any(probe, limit=2)
        assert first == [(ids[2], f"r{ids[2]}"), (ids[0], f"r{ids[0]}")]
        rest = store.pop_in_any(probe)
        assert rest == [(ids[3], f"r{ids[3]}"), (ids[1], f"r{ids[1]}")]
        assert store.pop_in_any(probe) == []

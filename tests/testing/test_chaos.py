"""Unit tests for the fault-injection harness itself.

A chaos harness that silently injects nothing (or breaks traffic it
should forward) proves nothing about the system under test, so the
injectors get their own tests: the proxy forwards bytes faithfully when
quiet, severs/pauses on command, and counts what it did; the flaky
store wrapper faults where configured — before or after the real
operation — and nowhere else.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.db import MemoryTaskStore
from repro.testing import ChaosProxy, FlakyTaskStore


class _EchoServer:
    """Minimal upstream: echoes every byte back."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._echo, args=(conn,), daemon=True
            ).start()

    def _echo(self, conn):
        try:
            while True:
                chunk = conn.recv(4096)
                if not chunk:
                    return
                conn.sendall(chunk)
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self._listener.close()


@pytest.fixture
def echo():
    server = _EchoServer()
    yield server
    server.close()


class TestChaosProxy:
    def test_forwards_traffic_when_quiet(self, echo):
        with ChaosProxy(*echo.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            sock.sendall(b"hello through the proxy")
            assert sock.recv(4096) == b"hello through the proxy"
            sock.close()
            assert proxy.connections_total == 1
            assert proxy.connections_severed == 0

    def test_sever_all_kills_live_connections(self, echo):
        with ChaosProxy(*echo.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            sock.sendall(b"ping")
            assert sock.recv(4096) == b"ping"
            assert proxy.sever_all() == 1
            # The severed connection yields EOF (or reset) on next read.
            sock.settimeout(5)
            try:
                data = sock.recv(4096)
            except OSError:
                data = b""
            assert data == b""
            sock.close()
            assert proxy.connections_severed == 1

    def test_sever_rate_one_drops_first_chunk(self, echo):
        rng = random.Random(1)
        with ChaosProxy(*echo.address, sever_rate=1.0, rng=rng) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            sock.settimeout(5)
            sock.sendall(b"doomed")
            try:
                data = sock.recv(4096)
            except OSError:
                data = b""
            assert data == b""
            sock.close()
            assert proxy.connections_severed >= 1

    def test_pause_refuses_new_connections_resume_restores(self, echo):
        with ChaosProxy(*echo.address) as proxy:
            proxy.pause()
            sock = socket.create_connection(proxy.address, timeout=5)
            sock.settimeout(5)
            # Accepted then immediately closed: reads yield EOF/reset.
            try:
                data = sock.recv(4096)
            except OSError:
                data = b""
            assert data == b""
            sock.close()
            proxy.resume()
            sock = socket.create_connection(proxy.address, timeout=5)
            sock.sendall(b"back")
            assert sock.recv(4096) == b"back"
            sock.close()

    def test_delay_slows_forwarding(self, echo):
        with ChaosProxy(*echo.address, delay=0.1) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            t0 = time.monotonic()
            sock.sendall(b"slow")
            assert sock.recv(4096) == b"slow"
            # One delay each way.
            assert time.monotonic() - t0 >= 0.2
            sock.close()

    def test_double_start_rejected(self, echo):
        proxy = ChaosProxy(*echo.address).start()
        with pytest.raises(RuntimeError):
            proxy.start()
        proxy.stop()


@pytest.fixture
def flaky_pair():
    inner = MemoryTaskStore()
    yield inner
    inner.close()


class TestFlakyTaskStore:
    def test_passthrough_at_rate_zero(self, flaky_pair):
        flaky = FlakyTaskStore(flaky_pair, failure_rate=0.0)
        tid = flaky.create_task("exp", 0, "p")
        assert flaky.pop_out(0) == [(tid, "p")]
        flaky.report(tid, 0, "r")
        assert flaky.pop_in(tid) == "r"
        assert flaky.faults_injected == {}

    def test_fault_before_operation_leaves_inner_untouched(self, flaky_pair):
        flaky = FlakyTaskStore(
            flaky_pair, failure_rate=1.0, lost_response_rate=0.0,
            rng=random.Random(3),
        )
        with pytest.raises(ConnectionError, match="before"):
            flaky.create_task("exp", 0, "p")
        assert flaky_pair.max_task_id() == 0
        assert flaky.faults_injected["create_task"] == 1

    def test_fault_after_operation_applies_then_raises(self, flaky_pair):
        # The applied-but-unacknowledged case: the store state advanced
        # even though the caller saw a connection error.
        flaky = FlakyTaskStore(
            flaky_pair, failure_rate=1.0, lost_response_rate=1.0,
            rng=random.Random(3),
        )
        with pytest.raises(ConnectionError, match="response lost"):
            flaky.create_task("exp", 0, "p")
        assert flaky_pair.max_task_id() == 1

    def test_method_restriction(self, flaky_pair):
        flaky = FlakyTaskStore(
            flaky_pair, failure_rate=1.0, lost_response_rate=0.0,
            methods={"report"}, rng=random.Random(3),
        )
        tid = flaky.create_task("exp", 0, "p")  # not in methods: clean
        flaky.pop_out(0)
        with pytest.raises(ConnectionError):
            flaky.report(tid, 0, "r")
        assert set(flaky.faults_injected) == {"report"}

    def test_close_never_faults(self, flaky_pair):
        flaky = FlakyTaskStore(flaky_pair, failure_rate=1.0)
        flaky.close()  # must not raise

    def test_inner_accessor(self, flaky_pair):
        flaky = FlakyTaskStore(flaky_pair)
        assert flaky.inner is flaky_pair

    def test_seeded_runs_are_reproducible(self, flaky_pair):
        def run(seed):
            flaky = FlakyTaskStore(
                MemoryTaskStore(), failure_rate=0.5, rng=random.Random(seed)
            )
            outcomes = []
            for i in range(20):
                try:
                    flaky.create_task("exp", 0, f"p{i}")
                    outcomes.append("ok")
                except ConnectionError as exc:
                    outcomes.append("before" if "before" in str(exc) else "after")
            return outcomes

        assert run(11) == run(11)
        assert run(11) != run(12)

"""Integration tests: the async ME driver against a real threaded pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.me import ackley, ranks_to_priorities, run_async_optimization, uniform_random
from repro.me.driver import decode_result
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.telemetry import EventKind, TraceCollector

WORK_TYPE = 0


@pytest.fixture
def eq():
    eqsql = EQSQL(MemoryTaskStore())
    yield eqsql
    eqsql.close()


@pytest.fixture
def pool(eq):
    handler = PythonTaskHandler(lambda d: {"y": float(ackley(d["x"]))})
    config = PoolConfig(work_type=WORK_TYPE, n_workers=4)
    pool = ThreadedWorkerPool(eq, handler, config).start()
    yield pool
    pool.stop()


class TestDecodeResult:
    def test_dict_form(self):
        assert decode_result('{"y": 1.5}') == 1.5

    def test_bare_number(self):
        assert decode_result("2.5") == 2.5

    def test_error_payload_raises(self):
        with pytest.raises(ValueError, match="task failed"):
            decode_result('{"error": "boom"}')


class TestDriver:
    def test_all_points_evaluated(self, eq, pool):
        rng = np.random.default_rng(0)
        points = uniform_random(rng, 40, [(-5, 5)] * 2)
        result = run_async_optimization(
            eq, "exp", WORK_TYPE, points, batch_completed=10, timeout=60
        )
        assert result.X.shape == (40, 2)
        assert result.y.shape == (40,)
        # Values match the true objective at each returned point.
        assert np.allclose(result.y, np.asarray(ackley(result.X)), atol=1e-9)

    def test_reprioritizer_called_and_recorded(self, eq, pool):
        rng = np.random.default_rng(1)
        points = uniform_random(rng, 30, [(-5, 5)] * 2)
        calls = []

        def fake_reprioritizer(X_done, y_done, X_rem):
            calls.append((len(X_done), len(X_rem)))
            return ranks_to_priorities(np.asarray(ackley(X_rem)))

        trace = TraceCollector()
        result = run_async_optimization(
            eq,
            "exp",
            WORK_TYPE,
            points,
            reprioritizer=fake_reprioritizer,
            batch_completed=10,
            timeout=60,
            trace=trace,
        )
        assert len(result.y) == 30
        assert calls, "reprioritizer never invoked"
        # Each call saw a growing completed set.
        assert all(c1 >= 10 for c1, _ in calls)
        assert len(result.reprioritizations) == len(calls)
        phase_events = trace.filter(kind=EventKind.PHASE_START, source="reprioritize")
        assert len(phase_events) == len(calls)

    def test_best_trajectory_monotone(self, eq, pool):
        rng = np.random.default_rng(2)
        points = uniform_random(rng, 25, [(-3, 3)] * 2)
        result = run_async_optimization(
            eq, "exp", WORK_TYPE, points, batch_completed=5, timeout=60
        )
        trajectory = result.best_trajectory()
        assert np.all(np.diff(trajectory) <= 1e-12)
        assert trajectory[-1] == result.best_y
        assert ackley(result.best_x) == pytest.approx(result.best_y)

"""Tests for ME checkpoint/resume (§II-B2c)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EQSQL
from repro.data import ArtifactManager
from repro.db import MemoryTaskStore
from repro.me import sphere
from repro.me.checkpoint import (
    MECheckpoint,
    drain_resumed,
    latest_checkpoint,
    load_checkpoint,
    resume_futures,
    save_checkpoint,
)
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.store import MemoryConnector, Store
from repro.util.errors import InvalidStateError
from repro.util.ids import short_id

WORK_TYPE = 0


@pytest.fixture
def eq():
    eqsql = EQSQL(MemoryTaskStore())
    yield eqsql
    eqsql.close()


@pytest.fixture
def manager():
    name = short_id("ckpt")
    store = Store(name, MemoryConnector(name))
    yield ArtifactManager(store)
    MemoryConnector.drop_space(name)


def start_run(eq, n=10):
    rng = np.random.default_rng(0)
    points = rng.uniform(-2, 2, size=(n, 2))
    futures = eq.submit_tasks(
        "ckpt-exp", WORK_TYPE,
        [json.dumps({"x": list(map(float, p))}) for p in points],
    )
    return points, [f.eq_task_id for f in futures]


class TestCheckpointObject:
    def test_alignment_validation(self):
        with pytest.raises(InvalidStateError):
            MECheckpoint("e", 0, np.zeros((2, 2)), [1])
        with pytest.raises(InvalidStateError):
            MECheckpoint("e", 0, np.zeros((1, 2)), [1], done_task_ids=[1], done_values=[])

    def test_outstanding_and_done_views(self):
        points = np.arange(8.0).reshape(4, 2)
        ckpt = MECheckpoint(
            "e", 0, points, [10, 11, 12, 13],
            done_task_ids=[11, 13], done_values=[1.0, 3.0],
        )
        assert ckpt.n_outstanding == 2
        assert ckpt.outstanding_ids() == [10, 12]
        assert np.array_equal(ckpt.done_X(), points[[1, 3]])
        assert list(ckpt.done_y()) == [1.0, 3.0]


class TestSaveLoad:
    def test_round_trip(self, manager):
        points = np.random.default_rng(1).normal(size=(5, 3))
        ckpt = MECheckpoint("exp", 2, points, [1, 2, 3, 4, 5],
                            done_task_ids=[2], done_values=[0.5])
        record = save_checkpoint(manager, ckpt, tags={"round": 1})
        loaded = load_checkpoint(manager, record.artifact_id)
        assert loaded.exp_id == "exp" and loaded.work_type == 2
        assert np.array_equal(loaded.points, points)
        assert loaded.done_task_ids == [2]

    def test_latest_by_experiment(self, manager):
        points = np.zeros((1, 1))
        save_checkpoint(manager, MECheckpoint("a", 0, points, [1]))
        save_checkpoint(
            manager,
            MECheckpoint("a", 0, points, [1], done_task_ids=[1], done_values=[9.0]),
        )
        save_checkpoint(manager, MECheckpoint("b", 0, points, [1]))
        latest = latest_checkpoint(manager, "a")
        assert latest.done_values == [9.0]


class TestResume:
    def test_results_reported_while_down_are_picked_up(self, eq, manager):
        """The crash-resume story: the ME dies mid-run; pools keep
        working; a new ME process resumes from the checkpoint."""
        points, task_ids = start_run(eq, n=8)
        # ME processes 3 results, checkpoints, then "crashes".
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: {"y": float(sphere(d["x"]))}),
            PoolConfig(work_type=WORK_TYPE, n_workers=2),
        ).start()
        from repro.core import as_completed
        from repro.core.futures import Future

        live = [Future(eq, tid, WORK_TYPE) for tid in task_ids]
        done_ids, done_vals = [], []
        for future in as_completed(live, pop=True, n=3, delay=0.01, timeout=30):
            _, raw = future.result(timeout=0)
            done_ids.append(future.eq_task_id)
            done_vals.append(json.loads(raw)["y"])
        record = save_checkpoint(
            manager,
            MECheckpoint("ckpt-exp", WORK_TYPE, points, task_ids,
                         done_task_ids=done_ids, done_values=done_vals),
        )
        del live  # the ME process is gone

        # ... pools keep completing everything in the meantime ...
        while eq.queue_lengths(WORK_TYPE)[0] > 0 or pool.owned() > 0:
            eq.clock.sleep(0.01)

        # A new process resumes and drains the remaining five.
        resumed = load_checkpoint(manager, record.artifact_id)
        final = drain_resumed(eq, resumed, timeout=30)
        pool.stop()
        assert final.n_outstanding == 0
        assert len(final.done_values) == 8
        # Values are the true objective at the checkpointed points.
        assert np.allclose(
            sorted(final.done_y()),
            sorted(np.asarray(sphere(points))),
            atol=1e-9,
        )

    def test_resume_futures_identity(self, eq):
        points, task_ids = start_run(eq, n=3)
        ckpt = MECheckpoint("ckpt-exp", WORK_TYPE, points, task_ids)
        futures = resume_futures(eq, ckpt)
        assert [f.eq_task_id for f in futures] == task_ids
        # Complete one by hand; the resumed future resolves.
        message = eq.query_task(WORK_TYPE, timeout=0)
        eq.report_task(message["eq_task_id"], WORK_TYPE, '{"y": 1.25}')
        match = [f for f in futures if f.eq_task_id == message["eq_task_id"]][0]
        _, raw = match.result(timeout=1)
        assert json.loads(raw) == {"y": 1.25}

"""Tests for DoE samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.me import latin_hypercube, uniform_random

BOUNDS = [(-32.768, 32.768)] * 4  # the Ackley domain of §VI


class TestUniform:
    def test_shape_and_bounds(self):
        rng = np.random.default_rng(0)
        pts = uniform_random(rng, 750, BOUNDS)
        assert pts.shape == (750, 4)
        assert np.all(pts >= -32.768) and np.all(pts <= 32.768)

    def test_reproducible_with_seed(self):
        a = uniform_random(np.random.default_rng(7), 10, BOUNDS)
        b = uniform_random(np.random.default_rng(7), 10, BOUNDS)
        assert np.array_equal(a, b)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            uniform_random(np.random.default_rng(0), 0, BOUNDS)

    def test_invalid_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            uniform_random(rng, 5, [(1.0, 1.0)])
        with pytest.raises(ValueError):
            uniform_random(rng, 5, [1.0, 2.0])


class TestLatinHypercube:
    def test_shape_and_bounds(self):
        rng = np.random.default_rng(0)
        pts = latin_hypercube(rng, 100, BOUNDS)
        assert pts.shape == (100, 4)
        assert np.all(pts >= -32.768) and np.all(pts <= 32.768)

    def test_stratification(self):
        """Exactly one sample per axis stratum per dimension."""
        rng = np.random.default_rng(3)
        n = 50
        bounds = [(0.0, 1.0)] * 3
        pts = latin_hypercube(rng, n, bounds)
        for j in range(3):
            strata = np.floor(pts[:, j] * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert sorted(strata) == list(range(n))

    def test_better_coverage_than_uniform(self):
        """LHS 1-D projections fill strata uniform sampling leaves empty."""
        rng = np.random.default_rng(5)
        n = 40
        lhs = latin_hypercube(rng, n, [(0.0, 1.0)])
        occupied = len(set(np.floor(lhs[:, 0] * n).astype(int)))
        assert occupied == n  # every stratum hit (uniform typically ~63%)

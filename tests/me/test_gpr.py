"""Tests for the from-scratch Gaussian process regressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.me import GaussianProcessRegressor, Matern52Kernel, RBFKernel


def make_data(n=30, d=2, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, d))
    y = np.sin(X[:, 0]) + 0.5 * np.cos(2 * X[:, 1 % d]) + noise * rng.normal(size=n)
    return X, y


class TestKernels:
    def test_rbf_diagonal_is_variance(self):
        k = RBFKernel(lengthscale=0.7, variance=2.0)
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = k(X, X)
        assert np.allclose(np.diag(K), 2.0)

    def test_rbf_decays_with_distance(self):
        k = RBFKernel()
        a = np.array([[0.0]])
        near, far = np.array([[0.1]]), np.array([[3.0]])
        assert k(a, near)[0, 0] > k(a, far)[0, 0]

    def test_matern_diagonal_is_variance(self):
        k = Matern52Kernel(lengthscale=1.0, variance=1.5)
        X = np.random.default_rng(0).normal(size=(4, 2))
        assert np.allclose(np.diag(k(X, X)), 1.5)

    def test_kernels_symmetric_psd(self):
        X = np.random.default_rng(1).normal(size=(20, 3))
        for k in (RBFKernel(0.5, 1.0), Matern52Kernel(0.8, 2.0)):
            K = k(X, X)
            assert np.allclose(K, K.T)
            eigvals = np.linalg.eigvalsh(K)
            assert eigvals.min() > -1e-8

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RBFKernel(lengthscale=0)
        with pytest.raises(ValueError):
            Matern52Kernel(variance=-1)


class TestFitPredict:
    def test_interpolates_training_points_low_noise(self):
        X, y = make_data(n=25)
        model = GaussianProcessRegressor(
            noise=1e-8, optimize_hyperparameters=False,
            kernel=RBFKernel(lengthscale=1.0),
        )
        model.fit(X, y)
        pred = model.predict(X)
        assert np.allclose(pred, y, atol=1e-3)

    def test_predictive_std_small_at_train_large_far(self):
        X, y = make_data(n=20, d=1)
        model = GaussianProcessRegressor(noise=1e-6, optimize_hyperparameters=False)
        model.fit(X, y)
        _, std_train = model.predict(X, return_std=True)
        _, std_far = model.predict(np.array([[10.0]]), return_std=True)
        assert std_far[0] > 10 * np.max(std_train)

    def test_hyperparameter_fit_improves_lml(self):
        X, y = make_data(n=40, noise=0.05)
        fixed = GaussianProcessRegressor(
            kernel=RBFKernel(lengthscale=10.0), noise=0.5,
            optimize_hyperparameters=False,
        ).fit(X, y)
        tuned = GaussianProcessRegressor(
            kernel=RBFKernel(lengthscale=10.0), noise=0.5,
            optimize_hyperparameters=True,
        ).fit(X, y)
        assert tuned.log_marginal_likelihood() >= fixed.log_marginal_likelihood()

    def test_generalization_on_smooth_function(self):
        X, y = make_data(n=60, d=2, seed=2)
        model = GaussianProcessRegressor().fit(X, y)
        Xt, yt = make_data(n=30, d=2, seed=9)
        pred = model.predict(Xt)
        rmse = float(np.sqrt(np.mean((pred - yt) ** 2)))
        assert rmse < 0.15

    def test_single_observation(self):
        model = GaussianProcessRegressor(optimize_hyperparameters=False)
        model.fit([[0.0]], [3.0])
        assert model.predict([[0.0]])[0] == pytest.approx(3.0, abs=1e-3)

    def test_constant_targets(self):
        X = np.linspace(0, 1, 10)[:, None]
        model = GaussianProcessRegressor(optimize_hyperparameters=False)
        model.fit(X, np.full(10, 7.0))
        assert model.predict([[0.5]])[0] == pytest.approx(7.0, abs=1e-6)

    def test_duplicate_inputs_jitter(self):
        X = np.zeros((8, 2))
        y = np.random.default_rng(0).normal(size=8)
        model = GaussianProcessRegressor(optimize_hyperparameters=False, noise=1e-8)
        model.fit(X, y)  # must not raise despite a singular kernel
        assert np.isfinite(model.predict([[0.0, 0.0]])[0])

    def test_errors(self):
        model = GaussianProcessRegressor()
        with pytest.raises(RuntimeError):
            model.predict([[0.0]])
        with pytest.raises(ValueError):
            model.fit([[0.0], [1.0]], [1.0])
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=0)

    def test_matern_model_also_works(self):
        X, y = make_data(n=30, d=1)
        model = GaussianProcessRegressor(
            kernel=Matern52Kernel(), optimize_hyperparameters=False, noise=1e-6
        ).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-2)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_mean_reverts_to_prior_far_away(self, seed):
        X, y = make_data(n=15, d=1, seed=seed)
        model = GaussianProcessRegressor(optimize_hyperparameters=False)
        model.fit(X, y)
        far = model.predict(np.array([[1e3]]))[0]
        assert far == pytest.approx(float(np.mean(y)), rel=1e-3, abs=1e-3)


class TestExpectedImprovement:
    def test_ei_nonnegative_and_zero_where_certainly_worse(self):
        X = np.linspace(-2, 2, 15)[:, None]
        y = (X[:, 0]) ** 2
        model = GaussianProcessRegressor(noise=1e-6, optimize_hyperparameters=False)
        model.fit(X, y)
        grid = np.linspace(-2, 2, 50)[:, None]
        ei = model.expected_improvement(grid)
        assert np.all(ei >= 0)
        # EI should peak near the observed minimum (x=0), not the edges.
        assert abs(grid[int(np.argmax(ei)), 0]) < 1.0

"""Tests for the asynchronous Bayesian optimization driver (Fig 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.me import BOConfig, ackley, run_async_bo, sphere
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

WORK_TYPE = 0


@pytest.fixture
def eq():
    eqsql = EQSQL(MemoryTaskStore())
    yield eqsql
    eqsql.close()


@pytest.fixture
def sphere_pool(eq):
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda d: {"y": float(sphere(d["x"]))}),
        PoolConfig(work_type=WORK_TYPE, n_workers=4),
    ).start()
    yield pool
    pool.stop()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BOConfig(bounds=[])
        with pytest.raises(ValueError):
            BOConfig(bounds=[(-1, 1)], n_initial=1)
        with pytest.raises(ValueError):
            BOConfig(bounds=[(-1, 1)], n_initial=20, n_total=10)
        with pytest.raises(ValueError):
            BOConfig(bounds=[(-1, 1)], cancel_fraction=1.0)


class TestRun:
    def test_completes_exact_budget(self, eq, sphere_pool):
        config = BOConfig(
            bounds=[(-3, 3)] * 2, n_initial=10, n_total=30,
            batch_completed=5, proposals_per_round=5, seed=1,
        )
        result = run_async_bo(eq, "bo", WORK_TYPE, config, timeout=60)
        assert result.y.shape == (30,)
        assert result.X.shape == (30, 2)
        assert result.rounds >= 2
        # Values are the true objective at the returned points.
        assert np.allclose(result.y, np.asarray(sphere(result.X)), atol=1e-9)

    def test_bo_beats_random_on_sphere(self, eq, sphere_pool):
        config = BOConfig(
            bounds=[(-3, 3)] * 2, n_initial=10, n_total=40,
            batch_completed=5, proposals_per_round=5, seed=3,
        )
        result = run_async_bo(eq, "bo-v-random", WORK_TYPE, config, timeout=60)
        rng = np.random.default_rng(3)
        random_best = float(
            np.min(sphere(rng.uniform(-3, 3, size=(40, 2))))
        )
        # EI proposals concentrate near the optimum: clearly better
        # than the same budget of random points.
        assert result.best_y < random_best
        assert result.best_y < 0.15

    def test_cancellation_counts(self, eq, sphere_pool):
        config = BOConfig(
            bounds=[(-3, 3)] * 2, n_initial=15, n_total=35,
            batch_completed=5, proposals_per_round=6,
            cancel_fraction=0.4, seed=5,
        )
        result = run_async_bo(eq, "bo-cancel", WORK_TYPE, config, timeout=60)
        assert result.y.shape == (35,)
        # Some tasks were canceled and replaced.
        assert result.n_canceled >= 0
        assert result.n_submitted >= 35

    def test_trajectory_monotone(self, eq, sphere_pool):
        config = BOConfig(
            bounds=[(-2, 2)] * 2, n_initial=8, n_total=20,
            batch_completed=4, seed=7,
        )
        result = run_async_bo(eq, "bo-traj", WORK_TYPE, config, timeout=60)
        trajectory = result.best_trajectory()
        assert np.all(np.diff(trajectory) <= 1e-12)
        assert trajectory[-1] == result.best_y

    def test_on_ackley(self, eq):
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: {"y": float(ackley(d["x"]))}),
            PoolConfig(work_type=WORK_TYPE, n_workers=4),
        ).start()
        try:
            config = BOConfig(
                bounds=[(-10, 10)] * 2, n_initial=15, n_total=45,
                batch_completed=5, proposals_per_round=6, seed=11,
            )
            result = run_async_bo(eq, "bo-ackley", WORK_TYPE, config, timeout=60)
            assert result.y.shape == (45,)
            # Ackley at the proposals' best should improve on the
            # random initialization's best.
            init_best = float(np.min(result.y[: config.n_initial]))
            assert result.best_y <= init_best
        finally:
            pool.stop()

"""Tests for rank-based priorities and the GPR reprioritizer."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.me import GPRReprioritizer, ackley, ranks_to_priorities


class TestRanksToPriorities:
    def test_best_score_gets_highest_priority(self):
        scores = np.array([3.0, 1.0, 2.0])
        priorities = ranks_to_priorities(scores)
        assert list(priorities) == [1, 3, 2]

    def test_priorities_are_permutation_of_1_to_n(self):
        scores = np.random.default_rng(0).normal(size=100)
        priorities = ranks_to_priorities(scores)
        assert sorted(priorities) == list(range(1, 101))

    def test_empty(self):
        assert ranks_to_priorities(np.array([])).shape == (0,)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
            unique=True,
        )
    )
    def test_priority_order_matches_score_order(self, scores):
        arr = np.array(scores)
        priorities = ranks_to_priorities(arr)
        # Lower score => higher priority, elementwise.
        order_by_priority = np.argsort(-priorities)
        assert np.all(np.diff(arr[order_by_priority]) >= 0)


class TestGPRReprioritizer:
    def test_promotes_points_near_observed_minimum(self):
        rng = np.random.default_rng(0)
        X_done = rng.uniform(-30, 30, size=(80, 2))
        y_done = np.asarray(ackley(X_done))
        # Remaining: one point at the origin (true optimum), others far.
        X_remaining = np.vstack([[0.5, 0.5], rng.uniform(20, 30, size=(30, 2))])
        repri = GPRReprioritizer(seed=1)
        priorities = repri(X_done, y_done, X_remaining)
        assert priorities.shape == (31,)
        # The near-origin candidate should land in the top quartile.
        assert priorities[0] > 31 * 0.75
        assert repri.fit_count == 1
        assert repri.last_model is not None

    def test_empty_remaining(self):
        repri = GPRReprioritizer()
        out = repri(np.zeros((3, 2)), np.zeros(3), np.empty((0, 2)))
        assert out.shape == (0,)
        assert repri.fit_count == 0

    def test_max_train_caps_training_set(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(60, 2))
        y = rng.normal(size=60)
        repri = GPRReprioritizer(max_train=20, optimize_hyperparameters=False)
        repri(X, y, rng.uniform(-1, 1, size=(5, 2)))
        assert repri.last_model is not None
        assert repri.last_model._X.shape[0] == 20

    def test_priorities_valid_permutation(self):
        rng = np.random.default_rng(3)
        X_done = rng.uniform(-5, 5, size=(30, 3))
        y_done = np.asarray(ackley(X_done))
        X_rem = rng.uniform(-5, 5, size=(40, 3))
        priorities = GPRReprioritizer(optimize_hyperparameters=False)(
            X_done, y_done, X_rem
        )
        assert sorted(priorities) == list(range(1, 41))

"""Tests for the Colmena-style steering layer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EQSQL, TaskStatus
from repro.db import MemoryTaskStore
from repro.me import sphere
from repro.me.steering import Actions, Steering
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

WORK_TYPE = 0


@pytest.fixture
def eq():
    eqsql = EQSQL(MemoryTaskStore())
    yield eqsql
    eqsql.close()


@pytest.fixture
def pool(eq):
    pool = ThreadedWorkerPool(
        eq,
        PythonTaskHandler(lambda d: {"y": float(sphere(d["x"]))}),
        PoolConfig(work_type=WORK_TYPE, n_workers=3),
    ).start()
    yield pool
    pool.stop()


def payloads_for(points):
    return [json.dumps({"x": list(map(float, p))}) for p in points]


class TestSteering:
    def test_drain_without_policy_actions(self, eq, pool):
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        steering.submit(payloads_for(np.eye(3)))
        result = steering.run(lambda task, s: None)
        assert len(result.completed) == 3
        assert not result.stopped_by_policy
        assert result.n_submitted == 3
        # Results decoded for the policy.
        assert all(isinstance(t.result["y"], float) for t in result.completed)
        assert [t.index for t in result.completed] == [1, 2, 3]

    def test_policy_submits_follow_up_tasks(self, eq, pool):
        """Each good result spawns a refinement near it (re-sample)."""
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        steering.submit(payloads_for([[2.0, 2.0], [0.5, 0.5]]))
        spawned = []

        def policy(task, s):
            if task.result["y"] < 1.0 and len(spawned) < 2:
                refined = [v / 2 for v in task.payload["x"]]
                spawned.append(refined)
                return Actions(submit=payloads_for([refined]))
            return None

        result = steering.run(policy)
        assert len(spawned) >= 1
        assert len(result.completed) == 2 + len(spawned)

    def test_policy_stop_cancels_pending(self, eq):
        # No pool: everything stays queued so stop must cancel the rest.
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        futures = steering.submit(payloads_for(np.eye(4)))
        # Complete exactly one task by hand.
        message = eq.query_task(WORK_TYPE, timeout=0)
        eq.report_task(message["eq_task_id"], WORK_TYPE, '{"y": 0.0}')

        result = steering.run(lambda task, s: Actions(stop=True))
        assert result.stopped_by_policy
        assert len(result.completed) == 1
        assert result.n_canceled == 3
        statuses = [f.status for f in futures]
        assert statuses.count(TaskStatus.CANCELED) == 3

    def test_policy_cancel_specific_tasks(self, eq):
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        futures = steering.submit(payloads_for(np.eye(3)))
        message = eq.query_task(WORK_TYPE, timeout=0)
        eq.report_task(message["eq_task_id"], WORK_TYPE, '{"y": 1.0}')
        to_cancel = futures[2].eq_task_id

        def policy(task, s):
            return Actions(cancel=[to_cancel], stop=True)

        result = steering.run(policy)
        assert result.n_canceled >= 1
        assert futures[2].cancelled

    def test_policy_reprioritize_pending(self, eq):
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        futures = steering.submit(payloads_for(np.eye(3)))
        message = eq.query_task(WORK_TYPE, timeout=0)
        eq.report_task(message["eq_task_id"], WORK_TYPE, '{"y": 1.0}')

        def policy(task, s):
            # Two still pending: make the later one urgent, then stop.
            return Actions(reprioritize=[1, 9], stop=True)

        steering.run(policy)
        # Third task got priority 9 before cancellation on stop...
        # verify the DB saw the update by checking the canceled rows'
        # history is consistent: at minimum the call must not raise and
        # the pending count must have matched.

    def test_reprioritize_wrong_length_raises(self, eq):
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        steering.submit(payloads_for(np.eye(3)))
        message = eq.query_task(WORK_TYPE, timeout=0)
        eq.report_task(message["eq_task_id"], WORK_TYPE, '{"y": 1.0}')
        with pytest.raises(ValueError):
            steering.run(lambda task, s: Actions(reprioritize=[1]))

    def test_max_results_bound(self, eq, pool):
        steering = Steering(eq, "exp", WORK_TYPE, timeout=30)
        steering.submit(payloads_for(np.eye(5)))
        result = steering.run(lambda task, s: None, max_results=2)
        assert len(result.completed) == 2

    def test_fig2_loop_as_policy(self, eq, pool):
        """The paper's Fig 2 pseudocode expressed as a steering policy:
        every 3 completions, reorder the remaining queue by proximity of
        the submitted point to the best seen so far."""
        rng = np.random.default_rng(0)
        points = rng.uniform(-4, 4, size=(12, 2))
        steering = Steering(eq, "fig2", WORK_TYPE, timeout=30)
        steering.submit(payloads_for(points))
        best = [np.inf]
        reorders = [0]

        def policy(task, s):
            best[0] = min(best[0], task.result["y"])
            if task.index % 3 == 0 and s.pending:
                pend = s.pending
                dist = [
                    float(np.sum(np.square(np.array(json.loads(eq.task_info(f.eq_task_id).json_out)["x"]))))
                    for f in pend
                ]
                order = np.argsort(dist)
                priorities = np.empty(len(pend), dtype=int)
                priorities[order] = np.arange(len(pend), 0, -1)
                reorders[0] += 1
                return Actions(reprioritize=[int(p) for p in priorities])
            return None

        result = steering.run(policy)
        assert len(result.completed) == 12
        assert reorders[0] >= 2
        assert best[0] == min(t.result["y"] for t in result.completed)

"""Tests for benchmark objective functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.me import ackley, griewank, lognormal_runtime, rastrigin, rosenbrock, sphere

points = st.lists(
    st.floats(min_value=-30, max_value=30, allow_nan=False), min_size=2, max_size=6
)


class TestGlobalMinima:
    def test_ackley_minimum_at_origin(self):
        assert ackley(np.zeros(4)) == pytest.approx(0.0, abs=1e-9)

    def test_sphere_minimum(self):
        assert sphere(np.zeros(3)) == 0.0

    def test_rastrigin_minimum(self):
        assert rastrigin(np.zeros(5)) == pytest.approx(0.0, abs=1e-9)

    def test_rosenbrock_minimum_at_ones(self):
        assert rosenbrock(np.ones(4)) == pytest.approx(0.0)

    def test_griewank_minimum(self):
        assert griewank(np.zeros(4)) == pytest.approx(0.0, abs=1e-12)


class TestShapes:
    def test_scalar_for_single_point(self):
        assert isinstance(ackley([1.0, 2.0]), float)

    def test_vector_for_batch(self):
        batch = np.random.default_rng(0).uniform(-2, 2, size=(10, 4))
        values = ackley(batch)
        assert values.shape == (10,)

    def test_batch_matches_pointwise(self):
        rng = np.random.default_rng(1)
        batch = rng.uniform(-5, 5, size=(20, 3))
        for fn in (ackley, sphere, rastrigin, rosenbrock, griewank):
            values = fn(batch)
            for i in range(20):
                assert values[i] == pytest.approx(fn(batch[i]), rel=1e-12)

    def test_rosenbrock_needs_2d(self):
        with pytest.raises(ValueError):
            rosenbrock([1.0])


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(x=points)
    def test_all_nonnegative_near_origin_bounds(self, x):
        # These benchmarks are all >= 0 on their standard domains.
        for fn in (ackley, sphere, rastrigin, griewank):
            assert fn(x) >= -1e-9

    @settings(max_examples=30, deadline=None)
    @given(x=points)
    def test_ackley_bounded_above(self, x):
        # -a e^{-b r} - e^{cos} + a + e <= a + e.
        assert ackley(x) <= 20 + np.e + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(x=points, scale=st.floats(min_value=1.5, max_value=4))
    def test_sphere_monotone_under_scaling(self, x, scale):
        if any(abs(v) > 1e-6 for v in x):
            assert sphere([v * scale for v in x]) > sphere(x)


class TestLognormalRuntime:
    def test_mean_parameterization(self):
        rng = np.random.default_rng(42)
        samples = lognormal_runtime(rng, mean=3.0, sigma=0.5, size=200_000)
        assert float(np.mean(samples)) == pytest.approx(3.0, rel=0.02)

    def test_positive(self):
        rng = np.random.default_rng(0)
        samples = lognormal_runtime(rng, mean=1.0, sigma=1.0, size=1000)
        assert np.all(samples > 0)

    def test_heterogeneous(self):
        rng = np.random.default_rng(0)
        samples = lognormal_runtime(rng, mean=1.0, sigma=0.5, size=1000)
        assert float(np.std(samples)) > 0.1

    def test_sigma_zero_is_constant(self):
        rng = np.random.default_rng(0)
        samples = lognormal_runtime(rng, mean=2.0, sigma=0.0, size=10)
        assert np.allclose(samples, 2.0)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            lognormal_runtime(rng, mean=0)
        with pytest.raises(ValueError):
            lognormal_runtime(rng, mean=1, sigma=-1)

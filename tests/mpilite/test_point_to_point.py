"""Point-to-point messaging tests for mpilite."""

from __future__ import annotations

import pytest

from repro.mpilite import ANY_SOURCE, ANY_TAG, Status, mpi_run
from repro.mpilite.launcher import MpiAbortError
from repro.util.errors import ReproError, TimeoutError_


class TestSendRecv:
    def test_two_rank_exchange(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = mpi_run(2, program)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_value_semantics_no_shared_mutation(self):
        def program(comm):
            if comm.rank == 0:
                payload = [1, 2, 3]
                comm.send(payload, dest=1)
                payload.append(99)  # must not be visible at rank 1
                return payload
            received = comm.recv(source=0)
            return received

        results = mpi_run(2, program)
        assert results[0] == [1, 2, 3, 99]
        assert results[1] == [1, 2, 3]

    def test_tag_matching(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("tag5", dest=1, tag=5)
                comm.send("tag9", dest=1, tag=9)
                return None
            # Receive out of order by tag.
            first = comm.recv(source=0, tag=9)
            second = comm.recv(source=0, tag=5)
            return (first, second)

        results = mpi_run(2, program)
        assert results[1] == ("tag9", "tag5")

    def test_any_source_any_tag_with_status(self):
        def program(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    status = Status(-2, -2)
                    value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
                    got.append((value, status.source, status.tag))
                return sorted(got, key=lambda x: x[1])
            comm.send(f"from-{comm.rank}", dest=0, tag=comm.rank * 10)
            return None

        results = mpi_run(3, program)
        assert results[0] == [("from-1", 1, 10), ("from-2", 2, 20)]

    def test_fifo_per_source_same_tag(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(20)]

        results = mpi_run(2, program)
        assert results[1] == list(range(20))

    def test_send_to_bad_rank_raises(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", dest=5)
            return None

        with pytest.raises(MpiAbortError) as info:
            mpi_run(2, program)
        assert info.value.rank == 0
        assert isinstance(info.value.original, ValueError)

    def test_recv_timeout_is_deadlock_guard(self):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(TimeoutError_):
                    comm.recv(source=1, timeout=0.05)
            return None

        mpi_run(2, program)


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def program(comm):
            if comm.rank == 0:
                request = comm.isend("payload", dest=1)
                done, _ = request.test()
                assert done
                request.wait(1)
                return None
            return comm.recv(source=0)

        assert mpi_run(2, program)[1] == "payload"

    def test_irecv_before_send(self):
        def program(comm):
            if comm.rank == 1:
                request = comm.irecv(source=0, tag=3)
                comm.send("ready", dest=0)
                return request.wait(timeout=5)
            comm.recv(source=1)  # wait until rank 1 has posted
            comm.send("late-message", dest=1, tag=3)
            return None

        assert mpi_run(2, program)[1] == "late-message"

    def test_irecv_after_send(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(42, dest=1)
                return None
            request = comm.irecv(source=0)
            return request.wait(timeout=5)

        assert mpi_run(2, program)[1] == 42

    def test_probe_empty_mailbox(self):
        def program(comm):
            if comm.rank == 0:
                assert comm.probe() is None
            return None

        mpi_run(2, program)

    def test_probe_sees_pending_message_without_consuming(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("m", dest=1, tag=4)
                return None
            # Wait for the message to arrive, then probe without consuming.
            while comm.probe(source=0, tag=4) is None:
                pass
            status = comm.probe(source=0, tag=4)
            value = comm.recv(source=0, tag=4)
            return (status.source, status.tag, value)

        assert mpi_run(2, program)[1] == (0, 4, "m")


class TestLauncher:
    def test_results_in_rank_order(self):
        results = mpi_run(4, lambda comm: comm.rank ** 2)
        assert results == [0, 1, 4, 9]

    def test_size_one(self):
        assert mpi_run(1, lambda comm: comm.size) == [1]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            mpi_run(0, lambda comm: None)

    def test_kwargs_forwarded(self):
        def program(comm, base, scale=1):
            return base + comm.rank * scale

        assert mpi_run(3, program, 10, scale=5) == [10, 15, 20]

    def test_deadlock_detection(self):
        def program(comm):
            # Both ranks wait forever on each other (no timeout).
            comm.recv(source=1 - comm.rank, timeout=None)

        with pytest.raises(ReproError):
            mpi_run(2, program, timeout=0.2)

    def test_lowest_failing_rank_reported(self):
        def program(comm):
            if comm.rank in (1, 2):
                raise RuntimeError(f"boom-{comm.rank}")
            return "ok"

        with pytest.raises(MpiAbortError) as info:
            mpi_run(3, program)
        assert info.value.rank == 1

"""Collective-operation tests for mpilite, including hypothesis checks
that collectives agree with their sequential definitions."""

from __future__ import annotations

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpilite import mpi_run


SIZES = [1, 2, 3, 5]


class TestBarrier:
    @pytest.mark.parametrize("size", SIZES)
    def test_barrier_orders_phases(self, size):
        import threading

        phase_one = []
        lock = threading.Lock()

        def program(comm):
            with lock:
                phase_one.append(comm.rank)
            comm.barrier()
            # After the barrier every rank must have registered.
            with lock:
                assert len(phase_one) == size

        mpi_run(size, program)

    def test_repeated_barriers(self):
        def program(comm):
            for _ in range(10):
                comm.barrier()
            return comm.rank

        assert mpi_run(3, program) == [0, 1, 2]


class TestBcast:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("root", [0, -1])
    def test_bcast_reaches_all(self, size, root):
        root = root % size

        def program(comm):
            data = {"key": [1, 2.5, "x"]} if comm.rank == root else None
            return comm.bcast(data, root=root)

        results = mpi_run(size, program)
        assert all(r == {"key": [1, 2.5, "x"]} for r in results)

    def test_bcast_isolated_copies(self):
        def program(comm):
            data = [0] if comm.rank == 0 else None
            received = comm.bcast(data, root=0)
            received.append(comm.rank)  # private copy on non-roots
            return received

        results = mpi_run(3, program)
        assert results[1] == [0, 1]
        assert results[2] == [0, 2]


class TestScatterGather:
    @pytest.mark.parametrize("size", SIZES)
    def test_scatter(self, size):
        def program(comm):
            data = [(i + 1) ** 2 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert mpi_run(size, program) == [(i + 1) ** 2 for i in range(size)]

    def test_scatter_wrong_length(self):
        def program(comm):
            if comm.rank == 0:
                # Validation fires before any message is sent, so only
                # the root needs to participate.
                with pytest.raises(ValueError):
                    comm.scatter([1], root=0)
            return "checked"

        assert mpi_run(2, program, timeout=5) == ["checked", "checked"]

    @pytest.mark.parametrize("size", SIZES)
    def test_gather(self, size):
        def program(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = mpi_run(size, program)
        assert results[0] == [r * 10 for r in range(size)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        def program(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        expected = [chr(ord("a") + r) for r in range(size)]
        assert mpi_run(size, program) == [expected] * size


class TestReduce:
    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_sum(self, size):
        def program(comm):
            return comm.reduce(comm.rank + 1, operator.add, root=0)

        results = mpi_run(size, program)
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_max(self, size):
        def program(comm):
            return comm.allreduce(comm.rank, max)

        assert mpi_run(size, program) == [size - 1] * size

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=6))
    def test_allreduce_matches_sequential_fold(self, values):
        size = len(values)

        def program(comm):
            return comm.allreduce(values[comm.rank], operator.add)

        assert mpi_run(size, program) == [sum(values)] * size


class TestAlltoall:
    @pytest.mark.parametrize("size", SIZES)
    def test_alltoall_transpose(self, size):
        def program(comm):
            send = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(send)

        results = mpi_run(size, program)
        for j in range(size):
            assert results[j] == [f"{i}->{j}" for i in range(size)]

    def test_alltoall_wrong_length(self):
        from repro.mpilite.launcher import MpiAbortError

        def program(comm):
            return comm.alltoall([1])

        with pytest.raises(MpiAbortError):
            mpi_run(2, program, timeout=5)


class TestSplitDup:
    def test_split_even_odd(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.allgather(comm.rank))

        results = mpi_run(4, program)
        # Even ranks {0, 2} form one comm, odd {1, 3} the other.
        assert results[0] == (0, 2, [0, 2])
        assert results[2] == (1, 2, [0, 2])
        assert results[1] == (0, 2, [1, 3])
        assert results[3] == (1, 2, [1, 3])

    def test_split_key_reorders(self):
        def program(comm):
            # Reverse rank order within the new communicator.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.allgather(comm.rank)

        results = mpi_run(3, program)
        assert results[0] == [2, 1, 0]

    def test_split_isolation_from_parent(self):
        def program(comm):
            sub = comm.split(color=0)
            # A message on the parent comm must not satisfy a recv on
            # the child communicator's tag space (different mailbox).
            if comm.rank == 0:
                comm.send("parent-msg", dest=1, tag=1)
                sub.send("child-msg", dest=1, tag=1)
                return None
            if comm.rank == 1:
                child = sub.recv(source=0, tag=1, timeout=5)
                parent = comm.recv(source=0, tag=1, timeout=5)
                return (child, parent)
            return None

        results = mpi_run(2, program)
        assert results[1] == ("child-msg", "parent-msg")

    def test_dup_same_group(self):
        def program(comm):
            dup = comm.dup()
            assert (dup.rank, dup.size) == (comm.rank, comm.size)
            return dup.allreduce(1, operator.add)

        assert mpi_run(3, program) == [3, 3, 3]

"""Tests for waitall/waitany and sendrecv."""

from __future__ import annotations

import pytest

from repro.mpilite import Request, mpi_run
from repro.util.errors import TimeoutError_


class TestWaitHelpers:
    def test_waitall_collects_in_order(self):
        def program(comm):
            if comm.rank == 0:
                requests = [comm.irecv(source=s, tag=s) for s in (1, 2, 3)]
                return Request.waitall(requests, timeout=10)
            comm.send(f"from-{comm.rank}", dest=0, tag=comm.rank)
            return None

        results = mpi_run(4, program)
        assert results[0] == ["from-1", "from-2", "from-3"]

    def test_waitany_returns_first_done(self):
        def program(comm):
            if comm.rank == 0:
                slow = comm.irecv(source=1, tag=1)
                fast = comm.irecv(source=2, tag=2)
                index, value = Request.waitany([slow, fast], timeout=10)
                # Ack rank 1 so it can send (keeps determinism).
                comm.send("go", dest=1)
                slow.wait(10)
                return (index, value)
            if comm.rank == 2:
                comm.send("fast-message", dest=0, tag=2)
            else:
                comm.recv(source=0, timeout=10)  # wait for the ack
                comm.send("slow-message", dest=0, tag=1)
            return None

        results = mpi_run(3, program)
        assert results[0] == (1, "fast-message")

    def test_waitany_empty_rejected(self):
        with pytest.raises(ValueError):
            Request.waitany([])

    def test_waitany_timeout(self):
        with pytest.raises(TimeoutError_):
            Request.waitany([Request()], timeout=0.05)

    def test_waitall_timeout(self):
        with pytest.raises(TimeoutError_):
            Request.waitall([Request.completed(1), Request()], timeout=0.05)


class TestSendrecv:
    def test_pairwise_exchange(self):
        def program(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(
                f"hello-from-{comm.rank}", dest=partner, sendtag=5,
                source=partner, recvtag=5, timeout=10,
            )

        results = mpi_run(2, program)
        assert results == ["hello-from-1", "hello-from-0"]

    def test_ring_rotation(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left, timeout=10)

        results = mpi_run(4, program)
        assert results == [3, 0, 1, 2]

"""Tests for the task flight recorder (journal + timeline merge)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry.journal import (
    EV_COLLECT,
    EV_ENQUEUE,
    EV_FETCH,
    EV_POP,
    EV_REPORT,
    EV_RUN_END,
    EV_RUN_START,
    EV_SUBMIT,
    ROLE_DB,
    ROLE_ME,
    ROLE_POOL,
    ROLE_SERVICE,
    Journal,
    JournalRecord,
    configure_journal,
    get_journal,
    load_journal,
    merge_timeline,
    render_timeline,
    set_journal,
    task_timeline,
)
from repro.util.clock import VirtualClock


class TestEmit:
    def test_emit_records_fields(self):
        clock = VirtualClock(start=10.0)
        journal = Journal(clock=clock)
        record = journal.emit(
            EV_ENQUEUE, 7, role=ROLE_DB, work_type=3, trace_id="t1",
            source="exp", extra={"priority": 2},
        )
        assert record is not None
        assert record.seq == 1
        assert record.time == 10.0
        assert record.role == ROLE_DB
        assert record.event == EV_ENQUEUE
        assert record.task_id == 7
        assert record.work_type == 3
        assert record.trace_id == "t1"
        assert record.extra == {"priority": 2}
        assert journal.records() == [record]

    def test_explicit_time_overrides_clock(self):
        journal = Journal(clock=VirtualClock(start=100.0))
        record = journal.emit(EV_POP, 1, role=ROLE_DB, time=42.5)
        assert record.time == 42.5

    def test_disabled_emit_is_noop(self):
        journal = Journal(enabled=False)
        assert journal.emit(EV_ENQUEUE, 1, role=ROLE_DB) is None
        assert len(journal) == 0
        journal.enable()
        assert journal.emit(EV_ENQUEUE, 1, role=ROLE_DB) is not None
        journal.disable()
        assert journal.emit(EV_ENQUEUE, 2, role=ROLE_DB) is None
        assert len(journal) == 1

    def test_global_default_starts_disabled(self):
        assert get_journal().enabled is False

    def test_records_filters_by_task(self):
        journal = Journal(clock=VirtualClock())
        journal.emit(EV_ENQUEUE, 1, role=ROLE_DB)
        journal.emit(EV_ENQUEUE, 2, role=ROLE_DB)
        journal.emit(EV_POP, 1, role=ROLE_DB)
        assert [r.event for r in journal.records(task_id=1)] == [EV_ENQUEUE, EV_POP]

    def test_tail_reads_incrementally(self):
        journal = Journal(clock=VirtualClock())
        journal.emit(EV_ENQUEUE, 1, role=ROLE_DB)
        first = journal.tail(0)
        assert [r.task_id for r in first] == [1]
        journal.emit(EV_POP, 1, role=ROLE_DB)
        second = journal.tail(first[-1].seq)
        assert [r.event for r in second] == [EV_POP]
        assert journal.tail(journal.last_seq()) == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Journal(capacity=0)


class TestRing:
    def test_wraparound_keeps_recent_and_counts_dropped(self):
        journal = Journal(clock=VirtualClock(), capacity=10)
        for i in range(25):
            journal.emit(EV_ENQUEUE, i, role=ROLE_DB)
        records = journal.records()
        assert len(records) == 10
        assert [r.task_id for r in records] == list(range(15, 25))
        assert journal.dropped == 15

    def test_pending_folds_at_threshold_without_reader(self):
        # 300 emits > _FLUSH_AT folds at least once on the hot path alone.
        journal = Journal(clock=VirtualClock(), capacity=1024)
        for i in range(300):
            journal.emit(EV_ENQUEUE, i, role=ROLE_DB)
        assert len(journal._ring) >= 256
        assert len(journal) == 300

    def test_clear_resets_ring_and_dropped(self):
        journal = Journal(clock=VirtualClock(), capacity=2)
        for i in range(5):
            journal.emit(EV_ENQUEUE, i, role=ROLE_DB)
        assert len(journal) == 2
        journal.clear()
        assert len(journal) == 0
        assert journal.dropped == 0


class TestSpillAndLoad:
    def test_spill_survives_ring_eviction(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(clock=VirtualClock(), capacity=4, spill_path=path)
        for i in range(20):
            journal.emit(EV_ENQUEUE, i, role=ROLE_DB)
        journal.close()
        loaded = load_journal(path)
        assert [r.task_id for r in loaded] == list(range(20))
        assert len(journal.records()) == 4  # ring kept only the tail

    def test_save_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "saved.jsonl")
        journal = Journal(clock=VirtualClock(start=5.0))
        journal.emit(EV_ENQUEUE, 9, role=ROLE_DB, work_type=2, source="pool-a")
        assert journal.save_jsonl(path) == 1
        (record,) = load_journal(path)
        assert (record.task_id, record.work_type, record.source) == (9, 2, "pool-a")
        assert record.time == 5.0

    def test_load_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        good = json.dumps(
            JournalRecord(1, 0.0, ROLE_DB, EV_ENQUEUE, 1).to_dict()
        )
        path.write_text(good + "\n" + good[: len(good) // 2])
        assert len(load_journal(str(path))) == 1

    def test_load_rejects_malformed_interior_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(
            JournalRecord(1, 0.0, ROLE_DB, EV_ENQUEUE, 1).to_dict()
        )
        path.write_text("not json\n" + good + "\n")
        with pytest.raises(ValueError, match="malformed journal line"):
            load_journal(str(path))

    def test_dict_round_trip_omits_empty_fields(self):
        bare = JournalRecord(3, 1.0, ROLE_POOL, EV_FETCH, 8)
        data = bare.to_dict()
        assert "trace_id" not in data and "source" not in data and "extra" not in data
        back = JournalRecord.from_dict(data)
        assert (back.seq, back.task_id, back.trace_id, back.extra) == (3, 8, "", None)


class TestMergeTimeline:
    def _r(self, seq, time, role, event, task_id=1):
        return JournalRecord(seq, time, role, event, task_id)

    def test_interleaves_roles_by_time(self):
        me = [self._r(1, 0.0, ROLE_ME, EV_SUBMIT), self._r(2, 5.0, ROLE_ME, EV_COLLECT)]
        db = [self._r(1, 1.0, ROLE_DB, EV_ENQUEUE), self._r(2, 4.0, ROLE_DB, EV_REPORT)]
        pool = [
            self._r(1, 2.0, ROLE_POOL, EV_FETCH),
            self._r(2, 3.0, ROLE_POOL, EV_RUN_START),
        ]
        merged = merge_timeline(db + pool + me)
        assert [r.event for r in merged] == [
            EV_SUBMIT, EV_ENQUEUE, EV_FETCH, EV_RUN_START, EV_REPORT, EV_COLLECT,
        ]

    def test_same_timestamp_breaks_tie_by_lifecycle_order(self):
        # A shared clock can stamp submit and enqueue identically; the
        # submit still causally precedes the enqueue it triggered.
        db = [self._r(1, 1.0, ROLE_DB, EV_ENQUEUE)]
        me = [self._r(1, 1.0, ROLE_ME, EV_SUBMIT)]
        merged = merge_timeline(db + me)
        assert [r.event for r in merged] == [EV_SUBMIT, EV_ENQUEUE]

    def test_skewed_role_never_reorders_internally(self):
        # The pool's clock runs 100s ahead of the DB's, but its records
        # must stay in emission order relative to each other.
        db = [
            self._r(1, 0.0, ROLE_DB, EV_ENQUEUE),
            self._r(2, 1.0, ROLE_DB, EV_POP),
            self._r(3, 2.0, ROLE_DB, EV_REPORT),
        ]
        pool = [
            self._r(1, 101.0, ROLE_POOL, EV_FETCH),
            self._r(2, 100.5, ROLE_POOL, EV_RUN_START),  # timestamp regression
            self._r(3, 101.5, ROLE_POOL, EV_RUN_END),
        ]
        merged = merge_timeline(pool + db)
        pool_events = [r.event for r in merged if r.role == ROLE_POOL]
        assert pool_events == [EV_FETCH, EV_RUN_START, EV_RUN_END]
        db_events = [r.event for r in merged if r.role == ROLE_DB]
        assert db_events == [EV_ENQUEUE, EV_POP, EV_REPORT]

    def test_task_timeline_selects_one_task(self):
        records = [
            self._r(1, 0.0, ROLE_DB, EV_ENQUEUE, task_id=1),
            self._r(2, 0.5, ROLE_DB, EV_ENQUEUE, task_id=2),
            self._r(3, 1.0, ROLE_DB, EV_POP, task_id=1),
        ]
        timeline = task_timeline(records, 1)
        assert [r.event for r in timeline] == [EV_ENQUEUE, EV_POP]
        assert all(r.task_id == 1 for r in timeline)

    def test_merge_across_journal_instances(self):
        # Two processes (roles), each with its own journal and clock.
        db_clock, pool_clock = VirtualClock(0.0), VirtualClock(0.05)
        db, pool = Journal(clock=db_clock), Journal(clock=pool_clock)
        db.emit(EV_ENQUEUE, 1, role=ROLE_DB)
        db_clock.advance(0.1)
        db.emit(EV_POP, 1, role=ROLE_DB)
        pool_clock.advance(0.1)
        pool.emit(EV_FETCH, 1, role=ROLE_POOL)
        merged = merge_timeline(db.records() + pool.records())
        assert [r.event for r in merged] == [EV_ENQUEUE, EV_POP, EV_FETCH]


class TestConcurrency:
    def test_concurrent_writers_lose_nothing_within_capacity(self):
        journal = Journal(clock=VirtualClock(), capacity=100_000)
        n_threads, n_each = 8, 500

        def hammer(thread_id: int) -> None:
            for i in range(n_each):
                journal.emit(EV_ENQUEUE, thread_id * n_each + i, role=ROLE_DB)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = journal.records()
        assert len(records) == n_threads * n_each
        assert journal.dropped == 0
        # seqs are unique and the snapshot is seq-sorted
        seqs = [r.seq for r in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # every task id arrived exactly once
        assert len({r.task_id for r in records}) == n_threads * n_each

    def test_concurrent_writers_with_readers(self):
        journal = Journal(clock=VirtualClock(), capacity=4096)
        stop = threading.Event()

        def write() -> None:
            i = 0
            while not stop.is_set():
                journal.emit(EV_ENQUEUE, i, role=ROLE_DB)
                i += 1

        writers = [threading.Thread(target=write) for _ in range(4)]
        for w in writers:
            w.start()
        try:
            for _ in range(50):
                snapshot = journal.records()
                seqs = [r.seq for r in snapshot]
                assert seqs == sorted(seqs)
        finally:
            stop.set()
            for w in writers:
                w.join()


class TestRenderTimeline:
    def test_renders_relative_times_and_detail(self):
        records = [
            JournalRecord(1, 10.0, ROLE_ME, EV_SUBMIT, 4, source="exp"),
            JournalRecord(
                2, 10.5, ROLE_DB, EV_ENQUEUE, 4, extra={"priority": 1}
            ),
        ]
        text = render_timeline(records)
        assert "+0.000000" in text
        assert "+0.500000" in text
        assert "submit" in text and "enqueue" in text
        assert "priority=1" in text

    def test_empty_timeline(self):
        assert render_timeline([]) == "(no records)"


class TestGlobalJournal:
    def test_set_and_configure_restore(self):
        previous = get_journal()
        try:
            installed = configure_journal(clock=VirtualClock(), capacity=16)
            assert get_journal() is installed
            assert installed.enabled is True
            assert installed.capacity == 16
        finally:
            set_journal(previous)
        assert get_journal() is previous

"""FleetRegistry aggregation and TelemetryPusher heartbeats.

Liveness runs on a VirtualClock so staleness and expiry are exact, and
the pusher is driven through ``push_once`` so no test sleeps on a real
heartbeat interval.
"""

from __future__ import annotations

import pytest

from repro.telemetry.fleet import (
    SLOW_CPU_FRACTION,
    FleetRegistry,
    ProfileAggregate,
    TelemetryPusher,
    _percentile,
    _sanitize_label,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.clock import VirtualClock


def make_registry(**overrides) -> tuple[FleetRegistry, VirtualClock]:
    clock = VirtualClock()
    defaults = dict(
        clock=clock,
        metrics=MetricsRegistry(),
        default_interval=10.0,
        stale_multiple=2.0,
        expiry_multiple=3.0,
    )
    defaults.update(overrides)
    return FleetRegistry(**defaults), clock


class TestObserve:
    def test_ack_and_worker_row(self):
        fleet, _clock = make_registry()
        ack = fleet.observe(
            {
                "worker_id": "pool-1",
                "role": "pool",
                "interval": 5.0,
                "busy_fraction": 0.75,
                "n_workers": 4,
                "owned": 3,
                "tasks_completed": 12,
                "tasks_failed": 1,
            }
        )
        assert ack == {"accepted": True, "workers": 1}
        (row,) = fleet.workers()
        assert row["worker_id"] == "pool-1"
        assert row["role"] == "pool"
        assert row["state"] == "live"
        assert row["interval"] == 5.0
        assert row["busy_fraction"] == 0.75
        assert row["tasks_completed"] == 12
        assert row["tasks_failed"] == 1

    def test_missing_worker_id_raises(self):
        fleet, _clock = make_registry()
        with pytest.raises(ValueError):
            fleet.observe({})
        with pytest.raises(ValueError):
            fleet.observe({"worker_id": 42})

    def test_worker_id_sanitized(self):
        fleet, _clock = make_registry()
        fleet.observe({"worker_id": 'pool "a"\nb' + "x" * 200})
        (row,) = fleet.workers()
        assert '"' not in row["worker_id"]
        assert "\n" not in row["worker_id"]
        assert len(row["worker_id"]) <= 64

    def test_max_workers_rejection(self):
        fleet, _clock = make_registry(max_workers=2)
        assert fleet.observe({"worker_id": "a"})["accepted"]
        assert fleet.observe({"worker_id": "b"})["accepted"]
        ack = fleet.observe({"worker_id": "c"})
        assert ack == {"accepted": False, "reason": "fleet at max_workers"}
        # A known worker still heartbeats at the cap.
        assert fleet.observe({"worker_id": "a"})["accepted"]

    def test_unknown_fields_ignored(self):
        fleet, _clock = make_registry()
        ack = fleet.observe({"worker_id": "w", "future_field": {"x": 1}})
        assert ack["accepted"]


class TestLiveness:
    def test_stale_then_expired(self):
        fleet, clock = make_registry()
        fleet.observe({"worker_id": "w", "interval": 10.0})
        assert fleet.workers()[0]["state"] == "live"

        clock.advance_to(15.0)  # 1.5 intervals unseen: still live
        assert fleet.workers()[0]["state"] == "live"

        clock.advance_to(25.0)  # past stale_multiple (2) x interval
        assert fleet.workers()[0]["state"] == "stale"

        clock.advance_to(31.0)  # past expiry_multiple (3) x interval
        assert fleet.workers() == []

    def test_default_interval_applies(self):
        fleet, clock = make_registry(default_interval=1.0)
        fleet.observe({"worker_id": "w"})  # no declared interval
        clock.advance_to(2.5)
        assert fleet.workers()[0]["state"] == "stale"
        clock.advance_to(3.5)
        assert fleet.workers() == []

    def test_heartbeat_revives(self):
        fleet, clock = make_registry()
        fleet.observe({"worker_id": "w", "interval": 1.0})
        clock.advance_to(2.5)
        assert fleet.workers()[0]["state"] == "stale"
        fleet.observe({"worker_id": "w", "interval": 1.0})
        assert fleet.workers()[0]["state"] == "live"

    def test_snapshot_counts(self):
        fleet, clock = make_registry()
        fleet.observe({"worker_id": "fast", "interval": 1.0})
        fleet.observe({"worker_id": "slow", "interval": 100.0})
        clock.advance_to(2.5)  # "fast" is stale, "slow" still live
        snap = fleet.snapshot()
        assert snap["counts"] == {"total": 2, "live": 1, "stale": 1}
        assert snap["expiry"]["stale_multiple"] == 2.0

    def test_invalid_multiples_rejected(self):
        with pytest.raises(ValueError):
            FleetRegistry(metrics=MetricsRegistry(), stale_multiple=0.0)
        with pytest.raises(ValueError):
            FleetRegistry(
                metrics=MetricsRegistry(),
                stale_multiple=3.0,
                expiry_multiple=2.0,
            )


class TestProfiles:
    def test_aggregate_summary(self):
        agg = ProfileAggregate()
        for wall in [1.0, 2.0, 3.0, 4.0]:
            agg.add(
                {
                    "wall_seconds": wall,
                    "cpu_seconds": wall / 2,
                    "max_rss_kb": 100 * wall,
                }
            )
        agg.add({"wall_seconds": 10.0, "cpu_seconds": 5.0, "failed": True})
        summary = agg.summary()
        assert summary["count"] == 5
        assert summary["failed"] == 1
        assert summary["wall_p50_seconds"] == 3.0
        assert summary["wall_p95_seconds"] == 10.0
        assert summary["max_rss_kb"] == 400.0

    def test_percentile_nearest_rank(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.95) == 7.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.5) == 51.0
        assert _percentile(values, 0.95) == 95.0

    def test_observe_profiles_fills_snapshot(self):
        fleet, _clock = make_registry()
        fleet.observe_profiles(
            [
                {"task_id": 1, "work_type": 0, "wall_seconds": 1.0, "cpu_seconds": 0.9},
                {"task_id": 2, "work_type": 0, "wall_seconds": 2.0, "cpu_seconds": 1.8},
                {"task_id": 3, "work_type": 5, "wall_seconds": 0.5, "cpu_seconds": 0.1},
            ]
        )
        snap = fleet.snapshot()
        assert snap["profiles"]["0"]["count"] == 2
        assert snap["profiles"]["5"]["count"] == 1
        assert [p["task_id"] for p in snap["top_cpu"]] == [2, 1, 3]

    def test_profile_dedup_by_task_id(self):
        fleet, _clock = make_registry()
        profile = {"task_id": 42, "work_type": 0, "wall_seconds": 1.0, "cpu_seconds": 1.0}
        # Same task via the report path and again via a push envelope.
        fleet.observe_profiles([profile])
        fleet.observe({"worker_id": "w", "profiles": [dict(profile)]})
        assert fleet.snapshot()["profiles"]["0"]["count"] == 1

    def test_envelope_profiles_aggregate(self):
        fleet, _clock = make_registry()
        fleet.observe(
            {
                "worker_id": "w",
                "profiles": [
                    {"task_id": i, "work_type": 1, "wall_seconds": 1.0, "cpu_seconds": 0.5}
                    for i in range(8)
                ],
            }
        )
        assert fleet.snapshot()["profiles"]["1"]["count"] == 8

    def test_top_cpu_bounded(self):
        fleet, _clock = make_registry(top_profiles=3)
        fleet.observe_profiles(
            [
                {"task_id": i, "work_type": 0, "wall_seconds": 1.0, "cpu_seconds": float(i)}
                for i in range(10)
            ]
        )
        top = fleet.snapshot()["top_cpu"]
        assert [p["task_id"] for p in top] == [9, 8, 7]


class TestClassifyTask:
    def test_slow_vs_stuck_vs_unknown(self):
        fleet, _clock = make_registry()
        fleet.observe(
            {
                "worker_id": "w",
                "running": [
                    {"task_id": 1, "elapsed_seconds": 10.0, "cpu_seconds": 9.0},
                    {"task_id": 2, "elapsed_seconds": 10.0, "cpu_seconds": 0.5},
                    {"task_id": 3, "elapsed_seconds": 10.0},
                ],
            }
        )
        slow = fleet.classify_task(1)
        assert slow["classification"] == "slow"
        assert slow["cpu_fraction"] == pytest.approx(0.9)
        assert slow["worker_id"] == "w"
        stuck = fleet.classify_task(2)
        assert stuck["classification"] == "stuck"
        assert stuck["cpu_fraction"] < SLOW_CPU_FRACTION
        assert fleet.classify_task(3)["classification"] == "unknown"
        assert fleet.classify_task(99) is None


class TestPrometheus:
    def test_labelled_series(self):
        fleet, _clock = make_registry()
        fleet.observe(
            {
                "worker_id": "pool-1",
                "role": "pool",
                "busy_fraction": 0.5,
                "tasks_completed": 7,
            }
        )
        text = fleet.render_prometheus()
        assert text.endswith("\n")
        assert 'repro_fleet_worker_up{worker="pool-1",role="pool"} 1' in text
        assert 'repro_fleet_worker_busy_fraction{worker="pool-1"} 0.5' in text
        assert 'repro_fleet_worker_tasks_completed{worker="pool-1"} 7' in text
        assert "repro_fleet_workers_overflow 0" in text

    def test_stale_worker_renders_zero_up(self):
        fleet, clock = make_registry()
        fleet.observe({"worker_id": "w", "interval": 1.0})
        clock.advance_to(2.5)
        assert 'repro_fleet_worker_up{worker="w",role="worker"} 0' in (
            fleet.render_prometheus()
        )

    def test_cardinality_cap_with_overflow_gauge(self):
        fleet, _clock = make_registry(max_labelled=2)
        for i in range(5):
            fleet.observe({"worker_id": f"w{i}"})
        text = fleet.render_prometheus()
        assert text.count("repro_fleet_worker_up{") == 2
        assert "repro_fleet_workers_overflow 3" in text

    def test_clear_drops_everything(self):
        fleet, _clock = make_registry()
        fleet.observe(
            {"worker_id": "w", "profiles": [{"task_id": 1, "work_type": 0}]}
        )
        fleet.clear()
        snap = fleet.snapshot()
        assert snap["workers"] == []
        assert snap["profiles"] == {}
        assert "repro_fleet_worker_up{" not in fleet.render_prometheus()


class TestSanitizeLabel:
    def test_passthrough_and_replacement(self):
        assert _sanitize_label("pool-1.local:8080") == "pool-1.local:8080"
        assert _sanitize_label('a"b\\c\nd') == "a_b_c_d"
        assert _sanitize_label("") == "_"


class TestTelemetryPusher:
    def test_push_once_builds_envelope(self):
        seen = []
        clock = VirtualClock(start=5.0)
        pusher = TelemetryPusher(
            worker_id="p1",
            role="pool",
            sink=seen.append,
            interval=2.0,
            envelope_fn=lambda: {"busy_fraction": 0.25, "owned": 3},
            clock=clock,
        )
        assert pusher.push_once()
        assert pusher.pushes == 1
        (envelope,) = seen
        assert envelope["worker_id"] == "p1"
        assert envelope["role"] == "pool"
        assert envelope["interval"] == 2.0
        assert envelope["time"] == 5.0
        assert envelope["busy_fraction"] == 0.25
        assert envelope["owned"] == 3

    def test_sink_failure_absorbed(self):
        def bad_sink(envelope):
            raise ConnectionError("service down")

        pusher = TelemetryPusher("p1", "pool", bad_sink, interval=1.0)
        assert pusher.push_once() is False
        assert pusher.push_errors == 1
        assert pusher.pushes == 0

    def test_metric_deltas(self):
        registry = MetricsRegistry()
        counter = registry.counter("pool.tasks", "t")
        gauge = registry.gauge("pool.depth", "d")
        pusher = TelemetryPusher(
            "p1",
            "pool",
            lambda e: None,
            interval=1.0,
            metrics=registry,
            metric_prefixes=("pool.",),
        )
        counter.inc(5)
        gauge.set(2.0)
        env1 = pusher.build_envelope()
        assert env1["metrics"]["pool.tasks"] == 5.0
        assert env1["metrics"]["pool.depth"] == 2.0
        counter.inc(3)
        env2 = pusher.build_envelope()
        assert env2["metrics"]["pool.tasks"] == 3.0  # delta, not total

    def test_sampler_summaries(self):
        class FakeSampler:
            def summary(self):
                return {"mean": 0.5}

        class BrokenSampler:
            def summary(self):
                raise RuntimeError("no data")

        pusher = TelemetryPusher(
            "p1",
            "pool",
            lambda e: None,
            interval=1.0,
            samplers={"cpu": FakeSampler(), "bad": BrokenSampler()},
        )
        envelope = pusher.build_envelope()
        assert envelope["samplers"] == {"cpu": {"mean": 0.5}}

    def test_start_stop_idempotent(self):
        pusher = TelemetryPusher("p1", "pool", lambda e: None, interval=60.0)
        assert pusher.start() is pusher
        thread_before = pusher._thread
        assert pusher.start() is pusher
        assert pusher._thread is thread_before
        assert pusher.is_alive()
        pusher.stop()
        pusher.stop()  # second stop is a no-op
        assert not pusher.is_alive()
        # Parting beat fired on stop.
        assert pusher.pushes >= 1

    def test_context_manager(self):
        seen = []
        with TelemetryPusher("p1", "pool", seen.append, interval=60.0) as pusher:
            assert pusher.is_alive()
        assert not pusher.is_alive()
        assert len(seen) >= 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetryPusher("p1", "pool", lambda e: None, interval=0.0)


class TestEndToEndRegistry:
    def test_pusher_feeds_registry(self):
        fleet, _clock = make_registry()
        pusher = TelemetryPusher(
            "pool-a",
            "pool",
            sink=fleet.observe,
            interval=1.0,
            envelope_fn=lambda: {"tasks_completed": 4},
        )
        assert pusher.push_once()
        (row,) = fleet.workers()
        assert row["worker_id"] == "pool-a"
        assert row["tasks_completed"] == 4
        assert row["interval"] == 1.0

"""Tests for the span/tracer core: nesting, propagation, overhead."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.tracing import (
    STATUS_ERROR,
    STATUS_OK,
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    extract,
    get_tracer,
    inject,
    set_tracer,
    span_tree,
)
from repro.util.clock import VirtualClock


class TestSpanContext:
    def test_wire_round_trip(self):
        ctx = SpanContext("t" * 16, "s" * 16)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "bad",
        [None, [], ["only-one"], ["a", "b", "c"], ["", "b"], [1, 2], "ab", {"a": 1}],
    )
    def test_malformed_wire_is_none(self, bad):
        assert SpanContext.from_wire(bad) is None

    def test_inject_extract(self):
        ctx = SpanContext("abc", "def")
        assert extract(inject(ctx)) == ctx
        assert inject(None) is None
        assert extract(None) is None


class TestSpanLifecycle:
    def test_context_manager_records_span(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("op", component="test", k=1) as sp:
            clock.advance(2.0)
            sp.set_attr("extra", "v")
        spans = tracer.spans()
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "op"
        assert span.component == "test"
        assert span.duration() == pytest.approx(2.0)
        assert span.attrs == {"k": 1, "extra": "v"}
        assert span.status == STATUS_OK

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=VirtualClock())
        with pytest.raises(ValueError):
            with tracer.span("boom", component="test"):
                raise ValueError("bad")
        (span,) = tracer.spans()
        assert span.status == STATUS_ERROR
        assert "ValueError" in span.attrs["error"]

    def test_implicit_nesting_same_thread(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("outer", component="a") as outer:
            with tracer.span("inner", component="b") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer(clock=VirtualClock())
        remote = SpanContext("remote-trace", "remote-span")
        with tracer.span("local", component="a"):
            with tracer.span("child", component="b", parent=remote) as child:
                pass
        assert child.trace_id == "remote-trace"
        assert child.parent_id == "remote-span"

    def test_start_end_span_without_stack(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("dispatch", component="pool")
        clock.advance(1.0)
        # Not pushed: a concurrent span must not nest under it.
        with tracer.span("unrelated", component="x") as other:
            pass
        assert other.parent_id is None
        tracer.end_span(span)
        assert span.duration() == pytest.approx(1.0)
        tracer.end_span(span)  # double-end is a no-op
        assert len(tracer.spans()) == 2

    def test_add_span_retroactive(self):
        tracer = Tracer(clock=VirtualClock())
        parent = SpanContext("tid", "pid")
        span = tracer.add_span("fetch", "pool", 1.0, 3.5, parent=parent, attrs={"n": 4})
        assert span.duration() == pytest.approx(2.5)
        assert span.trace_id == "tid" and span.parent_id == "pid"
        assert tracer.spans()[0] is span

    def test_traced_decorator(self):
        tracer = Tracer(clock=VirtualClock())

        @tracer.traced(component="math")
        def double(x):
            return 2 * x

        assert double(4) == 8
        (span,) = tracer.spans()
        assert span.component == "math"
        assert "double" in span.name

    def test_span_dict_round_trip(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("op", component="c", n=3):
            pass
        (span,) = tracer.spans()
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("op", component="c") as sp:
            sp.set_attr("ignored", 1)
        assert tracer.start_span("x") is None
        tracer.end_span(None)
        assert tracer.add_span("y", "c", 0.0, 1.0) is None
        assert len(tracer) == 0

    def test_disabled_span_handle_is_shared(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_noop_span_context_is_none(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as sp:
            assert sp.context is None

    def test_global_default_disabled(self):
        assert get_tracer().enabled is False


class TestBounds:
    def test_max_spans_drops_overflow(self):
        tracer = Tracer(clock=VirtualClock(), max_spans=3)
        for i in range(5):
            tracer.add_span(f"s{i}", "c", 0.0, 1.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_components_in_first_seen_order(self):
        tracer = Tracer(clock=VirtualClock())
        for component in ("b", "a", "b", "c"):
            tracer.add_span("op", component, 0.0, 1.0)
        assert tracer.components() == ["b", "a", "c"]


class TestThreadIsolation:
    def test_stacks_are_per_thread(self):
        tracer = Tracer(clock=VirtualClock())
        seen: dict[str, str | None] = {}
        barrier = threading.Barrier(2)

        def worker(name: str):
            with tracer.span(f"root-{name}", component="t") as root:
                barrier.wait()
                with tracer.span(f"child-{name}", component="t") as child:
                    seen[name] = (child.parent_id, root.span_id)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for parent_id, root_id in seen.values():
            assert parent_id == root_id

    def test_cross_thread_context_handoff(self):
        tracer = Tracer(clock=VirtualClock())
        results = {}

        def worker(ctx):
            with tracer.span("remote", component="pool", parent=ctx) as sp:
                results["trace_id"] = sp.trace_id
                results["parent_id"] = sp.parent_id

        with tracer.span("submit", component="eqsql") as sp:
            ctx = sp.context
        t = threading.Thread(target=worker, args=(ctx,))
        t.start()
        t.join()
        assert results["trace_id"] == ctx.trace_id
        assert results["parent_id"] == ctx.span_id


class TestGlobals:
    def test_set_tracer_returns_previous(self):
        original = get_tracer()
        replacement = Tracer(enabled=False)
        try:
            assert set_tracer(replacement) is original
            assert get_tracer() is replacement
        finally:
            set_tracer(original)

    def test_configure_tracing_installs(self):
        original = get_tracer()
        try:
            clock = VirtualClock()
            tracer = configure_tracing(clock=clock, enabled=True, max_spans=10)
            assert get_tracer() is tracer
            assert tracer.clock is clock
        finally:
            set_tracer(original)


class TestSpanTree:
    def test_tree_indexing(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("root", component="a") as root:
            with tracer.span("child1", component="a"):
                pass
            with tracer.span("child2", component="a"):
                pass
        tree = span_tree(tracer.spans())
        assert {s.name for s in tree[root.span_id]} == {"child1", "child2"}
        assert [s.name for s in tree[None]] == ["root"]


# -- property-based: nesting and monotonicity under virtual time --------------

# Each action: (advance dt, depth delta). The interpreter keeps depth
# valid (never closes below zero) and closes remaining spans at the end.
_ACTIONS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.sampled_from([1, 1, 1, -1, -1, 0]),
    ),
    min_size=1,
    max_size=40,
)


class TestTracingProperties:
    @settings(max_examples=60, deadline=None)
    @given(actions=_ACTIONS)
    def test_nesting_and_timestamps_are_consistent(self, actions):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        open_handles = []
        counter = 0
        for dt, delta in actions:
            clock.advance(dt)
            if delta == 1:
                handle = tracer.span(f"op-{counter}", component="prop")
                handle.__enter__()
                open_handles.append(handle)
                counter += 1
            elif delta == -1 and open_handles:
                open_handles.pop().__exit__(None, None, None)
        while open_handles:
            clock.advance(0.5)
            open_handles.pop().__exit__(None, None, None)

        spans = tracer.spans()
        assert len(spans) == counter
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            # Timestamps are monotone under the virtual clock.
            assert span.end is not None
            assert span.end >= span.start
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                # A child opens no earlier and closes no later than its
                # parent (stack discipline on one thread).
                assert parent.start <= span.start
                assert span.end <= parent.end
                assert span.trace_id == parent.trace_id

    @settings(max_examples=30, deadline=None)
    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=20,
        )
    )
    def test_spans_snapshot_sorted_by_start(self, intervals):
        tracer = Tracer(clock=VirtualClock())
        for start, duration in intervals:
            tracer.add_span("op", "c", start, start + duration)
        starts = [s.start for s in tracer.spans()]
        assert starts == sorted(starts)

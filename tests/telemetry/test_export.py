"""Tests for trace import/export."""

from __future__ import annotations

import pytest

from repro.telemetry import EventKind, TraceCollector
from repro.telemetry.export import (
    events_from_lines,
    events_to_lines,
    load_trace,
    save_trace,
)
from repro.util.errors import SerializationError


def sample_trace():
    trace = TraceCollector()
    trace.task_start(1.0, 1, source="pool-1")
    trace.task_stop(3.5, 1, source="pool-1")
    trace.record(EventKind.FETCH, 2.0, source="pool-1", detail="5")
    trace.record(EventKind.PHASE_START, 4.0, source="reprioritize", detail="50")
    return trace


class TestRoundTrip:
    def test_lines_round_trip(self):
        events = sample_trace().snapshot()
        assert events_from_lines(events_to_lines(events)) == events

    def test_file_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        count = save_trace(trace, path)
        assert count == 4
        loaded = load_trace(path)
        assert loaded.snapshot() == trace.snapshot()

    def test_empty_trace_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_trace(TraceCollector(), path)
        assert load_trace(path).snapshot() == []

    def test_loaded_trace_feeds_timeseries(self, tmp_path):
        from repro.telemetry import concurrency_series

        path = tmp_path / "trace.jsonl"
        save_trace(sample_trace(), path)
        series = concurrency_series(load_trace(path).snapshot(), source="pool-1")
        assert series.value_at(2.0) == 1


class TestValidation:
    def test_bad_header(self):
        with pytest.raises(SerializationError, match="bad header"):
            events_from_lines(['{"format": "something-else"}'])

    def test_bad_version(self):
        with pytest.raises(SerializationError, match="version"):
            events_from_lines(['{"format": "repro-trace", "version": 99}'])

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            events_from_lines([])

    def test_bad_event_line(self):
        lines = ['{"format": "repro-trace", "version": 1}', '{"kind": "bogus-kind", "time": 1}']
        with pytest.raises(SerializationError, match="line 2"):
            events_from_lines(lines)

    def test_blank_lines_skipped(self):
        lines = events_to_lines(sample_trace().snapshot())
        lines.insert(2, "")
        assert len(events_from_lines(lines)) == 4

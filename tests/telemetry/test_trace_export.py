"""Tests for span exporters: JSONL, Chrome trace_event, breakdown."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.trace_export import (
    chrome_trace,
    latency_breakdown,
    load_spans,
    render_latency_breakdown,
    save_chrome_trace,
    save_spans,
    spans_from_lines,
    spans_to_lines,
)
from repro.telemetry.tracing import SpanContext, Tracer
from repro.util.clock import VirtualClock
from repro.util.errors import SerializationError


def _sample_tracer() -> Tracer:
    clock = VirtualClock()
    tracer = Tracer(clock=clock)
    with tracer.span("driver.run", component="driver"):
        clock.advance(1.0)
        with tracer.span("eqsql.submit", component="eqsql", eq_task_id=1):
            clock.advance(0.5)
        clock.advance(2.0)
    tracer.add_span(
        "pool.fetch", "pool", 1.5, 2.0, parent=SpanContext("t1", "s1"), attrs={"n": 3}
    )
    return tracer


class TestJsonl:
    def test_round_trip(self):
        tracer = _sample_tracer()
        spans = tracer.spans()
        restored = spans_from_lines(spans_to_lines(spans))
        assert [s.to_dict() for s in restored] == [s.to_dict() for s in spans]

    def test_file_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        count = save_spans(tracer, path)
        assert count == 3
        assert [s.to_dict() for s in load_spans(path)] == [
            s.to_dict() for s in tracer.spans()
        ]

    def test_empty_input_rejected(self):
        with pytest.raises(SerializationError):
            spans_from_lines([])

    def test_bad_header_rejected(self):
        with pytest.raises(SerializationError):
            spans_from_lines(['{"format": "something-else"}'])

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError):
            spans_from_lines(['{"format": "repro-spans", "version": 99}'])

    def test_bad_span_line_rejected(self):
        lines = ['{"format": "repro-spans", "version": 1}', '{"nope": true}']
        with pytest.raises(SerializationError, match="line 2"):
            spans_from_lines(lines)

    def test_blank_lines_skipped(self):
        lines = spans_to_lines(_sample_tracer().spans())
        lines.insert(1, "")
        assert len(spans_from_lines(lines)) == 3


class TestChromeTrace:
    def test_document_shape(self):
        document = chrome_trace(_sample_tracer())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        # One process_name per component + one thread_name per thread.
        assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
        process_names = {
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        }
        assert process_names == {"driver", "eqsql", "pool"}

    def test_timestamps_in_microseconds(self):
        document = chrome_trace(_sample_tracer())
        submit = next(
            e for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "eqsql.submit"
        )
        assert submit["ts"] == pytest.approx(1.0 * 1e6)
        assert submit["dur"] == pytest.approx(0.5 * 1e6)

    def test_args_carry_span_identity(self):
        document = chrome_trace(_sample_tracer())
        events = {e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"}
        run = events["driver.run"]
        submit = events["eqsql.submit"]
        assert submit["args"]["parent_id"] == run["args"]["span_id"]
        assert submit["args"]["trace_id"] == run["args"]["trace_id"]
        assert submit["args"]["eq_task_id"] == 1
        fetch = events["pool.fetch"]
        assert fetch["args"]["parent_id"] == "s1"
        assert fetch["args"]["n"] == 3

    def test_components_get_distinct_pids(self):
        document = chrome_trace(_sample_tracer())
        pids = {
            e["cat"]: e["pid"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert len(set(pids.values())) == len(pids)

    def test_save_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = save_chrome_trace(_sample_tracer(), path)
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count

    def test_open_spans_excluded(self):
        tracer = Tracer(clock=VirtualClock())
        open_span = tracer.start_span("open", component="c")
        assert open_span is not None
        document = chrome_trace([open_span])
        assert [e for e in document["traceEvents"] if e["ph"] == "X"] == []


class TestLatencyBreakdown:
    def test_grouping_and_order(self):
        tracer = Tracer(clock=VirtualClock())
        for duration in (1.0, 3.0):
            tracer.add_span("op.slow", "a", 0.0, duration)
        tracer.add_span("op.fast", "b", 0.0, 0.5)
        rows = latency_breakdown(tracer)
        assert [r["operation"] for r in rows] == ["op.slow", "op.fast"]
        slow = rows[0]
        assert slow["count"] == 2
        assert slow["total_s"] == pytest.approx(4.0)
        assert slow["mean_s"] == pytest.approx(2.0)
        assert slow["p50_s"] == pytest.approx(2.0)
        assert slow["max_s"] == pytest.approx(3.0)

    def test_render_contains_all_columns(self):
        text = render_latency_breakdown(_sample_tracer())
        for column in ("component", "operation", "count", "p95_s"):
            assert column in text
        assert "driver.run" in text

    def test_empty_source(self):
        assert latency_breakdown([]) == []

"""Tests for the metrics registry: semantics, thread-safety hammer."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry.events import TraceCollector
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(4)
        assert counter.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == pytest.approx(12.0)


class TestHistogram:
    def test_basic_stats(self):
        histogram = Histogram("h", bounds=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        assert histogram.min == pytest.approx(0.5)
        assert histogram.max == pytest.approx(500)
        assert histogram.mean == pytest.approx(555.5 / 4)

    def test_empty_stats_are_zero(self):
        histogram = Histogram("h", bounds=(1,))
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.min == 0.0
        assert histogram.max == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_quantile_interpolates(self):
        histogram = Histogram("h", bounds=(10, 20))
        for value in (2, 4, 6, 8):
            histogram.observe(value)
        assert 0 < histogram.quantile(0.5) <= 10

    def test_quantile_clamped_to_observed_range(self):
        # All observations in one wide bucket: interpolation must not
        # report a quantile beyond the true extremes.
        histogram = Histogram("h", bounds=(1000,))
        for value in (3, 5, 9):
            histogram.observe(value)
        assert histogram.quantile(0.5) <= 9
        assert histogram.quantile(0.99) <= 9

    def test_overflow_quantile_is_observed_max(self):
        histogram = Histogram("h", bounds=(1,))
        histogram.observe(50)
        histogram.observe(70)
        assert histogram.quantile(0.99) == pytest.approx(70)

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1,)).quantile(1.5)

    def test_snapshot_shape(self):
        histogram = Histogram("h", bounds=(1, 2))
        histogram.observe(1.5)
        snap = histogram.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["bounds"] == [1.0, 2.0]


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", COUNT_BUCKETS) is registry.histogram(
            "h", COUNT_BUCKETS
        )

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1, 2, 3))

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat", bounds=(1, 2)).observe(0.5)
        snap = registry.snapshot()
        assert snap["requests"]["value"] == 3.0
        assert snap["depth"]["value"] == 7.0
        text = registry.render_text()
        assert "requests: 3" in text
        assert "lat: count=1" in text

    def test_clear_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        registry.clear()
        assert len(registry) == 0

    def test_global_registry_swap(self):
        original = get_metrics()
        replacement = MetricsRegistry()
        try:
            assert set_metrics(replacement) is original
            assert get_metrics() is replacement
        finally:
            set_metrics(original)


class TestConcurrency:
    """Hammer tests: many threads, shared registry / collector."""

    def test_registry_hammer(self):
        registry = MetricsRegistry()
        n_threads, n_ops = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for i in range(n_ops):
                # get-or-create races on the same names on purpose.
                registry.counter("ops").inc()
                registry.gauge("depth").inc()
                registry.histogram("lat").observe(i * 0.001)
                registry.gauge("depth").dec()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = n_threads * n_ops
        counter = registry.counter("ops")
        histogram = registry.histogram("lat")
        assert counter.value == total
        assert histogram.count == total
        assert registry.gauge("depth").value == pytest.approx(0.0)
        # No observation lost: bucket counts add back up to the total.
        assert sum(histogram.snapshot()["counts"]) == total

    def test_trace_collector_hammer(self):
        collector = TraceCollector()
        n_threads, n_tasks = 8, 200
        barrier = threading.Barrier(n_threads)

        def worker(thread_id: int):
            barrier.wait()
            base = thread_id * n_tasks
            for i in range(n_tasks):
                collector.task_start(0.0, base + i, source=f"pool-{thread_id}")
                collector.task_stop(0.0, base + i, source=f"pool-{thread_id}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = collector.snapshot()
        assert len(events) == n_threads * n_tasks * 2
        for thread_id in range(n_threads):
            assert len(collector.filter(source=f"pool-{thread_id}")) == n_tasks * 2
        collector.clear()
        assert collector.snapshot() == []

"""Prometheus text exposition: names, escaping, histogram semantics."""

from __future__ import annotations

import math

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.monitor.prometheus import (
    CONTENT_TYPE,
    escape_help,
    escape_label_value,
    format_value,
    metric_name,
    render_prometheus,
)


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("service.requests") == "service_requests"

    def test_dashes_and_spaces(self):
        assert metric_name("pool.chaos-pool-1.busy") == "pool_chaos_pool_1_busy"
        assert metric_name("a b") == "a_b"

    def test_leading_digit_gets_prefix(self):
        assert metric_name("1xx") == "_1xx"

    def test_colon_allowed(self):
        assert metric_name("ns:metric") == "ns:metric"

    def test_valid_name_unchanged(self):
        assert metric_name("already_fine_name") == "already_fine_name"


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_also_escapes_quote(self):
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'


class TestFormatValue:
    def test_integral_floats_render_as_ints(self):
        assert format_value(3.0) == "3"
        assert format_value(0) == "0"

    def test_fractional(self):
        assert format_value(0.5) == "0.5"

    def test_special_values(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestRender:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("service.requests", "requests handled").inc(7)
        text = render_prometheus(reg)
        assert "# TYPE service_requests_total counter" in text
        assert "service_requests_total 7" in text
        assert "# HELP service_requests_total requests handled" in text

    def test_counter_already_named_total_not_doubled(self):
        reg = MetricsRegistry()
        reg.counter("service.connections_total", "conns").inc()
        text = render_prometheus(reg)
        assert "connections_total_total" not in text
        assert "service_connections_total 1" in text

    def test_gauge_no_suffix(self):
        reg = MetricsRegistry()
        reg.gauge("store.queue_out_depth", "depth").set(12)
        text = render_prometheus(reg)
        assert "# TYPE store_queue_out_depth gauge" in text
        assert "store_queue_out_depth 12" in text
        assert "_total" not in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("rpc.latency", bounds=(0.1, 1.0, 10.0), help="seconds")
        for v in (0.05, 0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg)
        lines = [ln for ln in text.splitlines() if ln.startswith("rpc_latency")]
        # per-bound counts are 2, 1, 1 raw -> 2, 3, 4 cumulative, +Inf = 5
        assert 'rpc_latency_bucket{le="0.1"} 2' in lines
        assert 'rpc_latency_bucket{le="1"} 3' in lines
        assert 'rpc_latency_bucket{le="10"} 4' in lines
        assert 'rpc_latency_bucket{le="+Inf"} 5' in lines
        assert "rpc_latency_count 5" in lines
        sum_line = next(ln for ln in lines if ln.startswith("rpc_latency_sum"))
        assert math.isclose(float(sum_line.split()[-1]), 55.6)

    def test_bucket_counts_never_decrease(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1, 2, 3, 4))
        for v in (0.5, 1.5, 3.5, 2.5, 9.0):
            h.observe(v)
        text = render_prometheus(reg)
        counts = [
            int(ln.split()[-1])
            for ln in text.splitlines()
            if ln.startswith("h_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 5  # +Inf bucket equals _count

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_multiline_help_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", "line one\nline two").set(1)
        text = render_prometheus(reg)
        assert "# HELP g line one\\nline two" in text
        # Exactly one physical line per logical line.
        assert len([ln for ln in text.splitlines() if ln.startswith("# HELP g")]) == 1

    def test_content_type_names_the_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_document_scrapable(self):
        """Every non-comment line must be `name[{labels}] value`."""
        reg = MetricsRegistry()
        reg.counter("c.x", "a counter").inc(2)
        reg.gauge("g.y", "a gauge").set(-1.5)
        reg.histogram("h.z", bounds=(1.0,), help="a histogram").observe(0.5)
        for line in render_prometheus(reg).splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value.replace("+Inf", "inf"))  # parseable
            bare = name_part.split("{", 1)[0]
            assert bare[0].isalpha() or bare[0] in "_:"
            assert all(c.isalnum() or c in "_:" for c in bare)

"""Monitor subsystem units: samplers, status server, terminal view."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.db import MemoryTaskStore
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.monitor import (
    CallbackSampler,
    StatusServer,
    StoreSampler,
    parse_url,
    render_status,
)
from repro.telemetry.monitor.samplers import PoolSampler, Sampler
from repro.util.clock import VirtualClock


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=5) as r:
        return r.status, json.loads(r.read().decode())


class TestSamplerBase:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Sampler(interval=0)

    def test_empty_history_summary_is_zeroes(self):
        s = Sampler(clock=VirtualClock())
        assert s.summary() == {
            "samples": 0, "level_last": 0.0, "level_mean": 0.0, "level_max": 0.0,
        }

    def test_level_series_is_time_weighted(self):
        clock = VirtualClock()
        s = Sampler(clock=clock)
        s.record_level(10)
        clock.advance_to(1.0)
        s.record_level(0)
        clock.advance_to(3.0)
        s.record_level(0)
        # level 10 for 1s, then 0 for 2s -> mean 10/3
        assert s.summary()["level_mean"] == pytest.approx(10 / 3)
        assert s.summary()["level_max"] == 10.0
        assert s.summary()["samples"] == 3

    def test_history_is_bounded(self):
        clock = VirtualClock()
        s = Sampler(clock=clock, history=4)
        for i in range(10):
            clock.advance_to(float(i))
            s.record_level(i)
        series = s.level_series()
        assert len(series.times) == 4
        assert list(series.counts) == [6, 7, 8, 9]

    def test_threaded_loop_survives_exceptions(self):
        class Exploding(Sampler):
            def __init__(self):
                super().__init__(interval=0.01)
                self.calls = 0

            def sample_once(self):
                self.calls += 1
                raise RuntimeError("boom")

        s = Exploding()
        with s:
            import time

            deadline = time.monotonic() + 5
            while s.calls < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert s.calls >= 3  # kept sampling after raising

    def test_double_start_is_noop(self):
        s = Sampler(interval=10)
        s.start()
        try:
            thread = s._thread
            assert s.start() is s  # idempotent: same sampler back
            assert s._thread is thread  # and no second thread spawned
        finally:
            s.stop()
        assert not s.is_alive()

    def test_double_stop_is_noop(self):
        s = Sampler(interval=10)
        s.start()
        assert s.stop() is s
        assert s.stop() is s  # second stop: nothing to join, no error
        assert not s.is_alive()

    def test_restart_after_stop(self):
        s = Sampler(interval=10)
        s.start()
        s.stop()
        s.start()  # a stopped sampler restarts cleanly
        try:
            assert s.is_alive()
        finally:
            s.stop()


class TestStoreSampler:
    def test_gauges_reflect_store_state(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = MemoryTaskStore()
        store.create_tasks("exp", 0, ["{}"] * 3)
        store.create_tasks("exp", 7, ["{}"] * 2)
        popped = store.pop_out(0, n=1, now=clock.now(), lease=10.0)
        sampler = StoreSampler(store, metrics=reg, clock=clock)

        sampler.sample_once()
        assert reg.get("store.tasks.queued").value == 4
        assert reg.get("store.tasks.running").value == 1
        assert reg.get("store.queue_out_depth").value == 4
        assert reg.get("store.queue_out_depth.type_0").value == 2
        assert reg.get("store.queue_out_depth.type_7").value == 2
        assert reg.get("leases.active").value == 1
        assert reg.get("leases.expired").value == 0

        # Let the lease lapse: active -> expired.
        clock.advance_to(11.0)
        sampler.sample_once()
        assert reg.get("leases.active").value == 0
        assert reg.get("leases.expired").value == 1

        # Complete the task: running -> complete, queue_in grows.
        store.report(popped[0][0], 0, "{}")
        sampler.sample_once()
        assert reg.get("store.tasks.complete").value == 1
        assert reg.get("store.queue_in_depth").value == 1
        store.close()

    def test_summary_uses_queue_depth_keys(self):
        clock = VirtualClock()
        store = MemoryTaskStore()
        store.create_tasks("exp", 0, ["{}"] * 5)
        sampler = StoreSampler(store, metrics=MetricsRegistry(), clock=clock)
        sampler.sample_once()
        clock.advance_to(2.0)
        sampler.sample_once()
        summary = sampler.summary()
        assert summary["samples"] == 2
        assert summary["queue_out_last_depth"] == 5.0
        assert summary["queue_out_max_depth"] == 5.0
        store.close()


class TestPoolSampler:
    def test_reads_pool_probes(self):
        class FakePool:
            name = "p1"

            class config:  # noqa: N801 - mimics PoolConfig attribute
                n_workers = 4

            def owned(self):
                return 6

            def busy(self):
                return 3

            def busy_fraction(self):
                return 0.75

        reg = MetricsRegistry()
        sampler = PoolSampler(FakePool(), metrics=reg, clock=VirtualClock())
        sampler.sample_once()
        assert reg.get("pool.p1.owned").value == 6
        assert reg.get("pool.p1.busy").value == 3
        assert reg.get("pool.p1.busy_fraction").value == 0.75
        assert "utilization" in sampler.summary()


class TestCallbackSampler:
    def test_publishes_probe_values(self):
        reg = MetricsRegistry()
        state = {"done": 0}
        sampler = CallbackSampler(
            {"me.points_completed": lambda: state["done"],
             "me.points_pending": lambda: 10 - state["done"]},
            metrics=reg,
            clock=VirtualClock(),
        )
        sampler.sample_once()
        state["done"] = 4
        sampler.sample_once()
        assert reg.get("me.points_completed").value == 4
        assert reg.get("me.points_pending").value == 6
        # headline = first probe
        assert sampler.summary()["level_last"] == 4.0

    def test_requires_probes(self):
        with pytest.raises(ValueError):
            CallbackSampler({})


class TestStatusServer:
    def test_routes(self):
        reg = MetricsRegistry()
        reg.counter("service.requests", "req").inc(3)
        server = StatusServer(
            port=0,
            metrics=reg,
            status_fn=lambda: {"store": {"queue_in": 0}},
            readiness_checks={"db": lambda: (True, "ok")},
        )
        with server:
            base = server.url
            code, body = get_json(base + "/healthz")
            assert (code, body) == (200, {"ok": True})

            code, body = get_json(base + "/readyz")
            assert code == 200
            assert body["checks"]["db"] == {"ok": True, "detail": "ok"}

            code, body = get_json(base + "/status")
            assert code == 200
            assert body == {"store": {"queue_in": 0}}

            with urllib.request.urlopen(base + "/metrics", timeout=5) as r:
                assert r.status == 200
                assert "version=0.0.4" in r.headers["Content-Type"]
                assert "service_requests_total 3" in r.read().decode()

            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(base + "/nope", timeout=5)
            assert exc.value.code == 404

    def test_readyz_fails_when_a_check_fails(self):
        server = StatusServer(
            port=0,
            metrics=MetricsRegistry(),
            readiness_checks={
                "good": lambda: (True, "fine"),
                "bad": lambda: (False, "db unreachable"),
            },
        )
        with server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(server.url + "/readyz", timeout=5)
            assert exc.value.code == 503
            body = json.loads(exc.value.read().decode())
            assert body["ok"] is False
            assert body["checks"]["bad"]["detail"] == "db unreachable"

    def test_raising_check_counts_as_failed(self):
        def explode():
            raise OSError("connection refused")

        server = StatusServer(
            port=0, metrics=MetricsRegistry(),
            readiness_checks={"db": explode},
        )
        ok, checks = server.run_readiness_checks()
        assert ok is False
        assert checks["db"]["ok"] is False
        assert "connection refused" in checks["db"]["detail"]

    def test_ephemeral_port_resolved(self):
        server = StatusServer(port=0, metrics=MetricsRegistry())
        host, port = server.address
        assert port != 0
        assert server.url == f"http://{host}:{port}"
        server.stop()  # stop before start is a no-op


class TestStatusServerEvents:
    def test_events_route_serves_events_fn(self):
        payload = {"journal": {"enabled": True}, "stragglers": {"active": []}}
        server = StatusServer(
            port=0, metrics=MetricsRegistry(), events_fn=lambda: payload
        )
        with server:
            code, body = get_json(server.url + "/events")
            assert (code, body) == (200, payload)

    def test_events_404_without_events_fn(self):
        server = StatusServer(port=0, metrics=MetricsRegistry())
        assert server.has_events is False
        with server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(server.url + "/events", timeout=5)
            assert exc.value.code == 404
            body = json.loads(exc.value.read().decode())
            assert body == {"ok": False, "error": "no route /events"}

    def test_404_body_names_the_missing_route(self):
        server = StatusServer(port=0, metrics=MetricsRegistry())
        with server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(server.url + "/nope", timeout=5)
            assert exc.value.code == 404
            body = json.loads(exc.value.read().decode())
            assert body == {"ok": False, "error": "no route /nope"}

    def test_query_string_stripped_before_dispatch(self):
        server = StatusServer(
            port=0, metrics=MetricsRegistry(), status_fn=lambda: {"ok": 1}
        )
        with server:
            code, body = get_json(server.url + "/status?pretty=1&x=y")
            assert (code, body) == (200, {"ok": 1})
            code, body = get_json(server.url + "/healthz?probe=k8s")
            assert (code, body) == (200, {"ok": True})

    def test_build_info_gauge_in_metrics(self):
        from repro import __version__

        server = StatusServer(port=0, metrics=MetricsRegistry())
        with server:
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
                text = r.read().decode()
        assert "repro_build_info 1" in text
        assert __version__ in text


class TestView:
    def test_parse_url_variants(self):
        assert parse_url("localhost:8080") == "http://localhost:8080"
        assert parse_url("http://h:1/") == "http://h:1"
        assert parse_url("http://h:1/status") == "http://h:1"
        assert parse_url("https://h:1/metrics") == "https://h:1"
        assert parse_url("http://h:1/events") == "http://h:1"

    def test_render_status_smoke(self):
        status = {
            "service": {
                "address": ["127.0.0.1", 1234], "uptime_seconds": 5.0,
                "requests": 100, "errors": 1, "bytes_received": 10,
                "bytes_sent": 20, "connections_active": 2,
                "connections_total": 3,
            },
            "store": {
                "tasks": {"queued": 4, "running": 1, "complete": 5,
                          "canceled": 0, "total": 10},
                "queue_out": {"0": 4}, "queue_out_total": 4, "queue_in": 2,
                "leases": {"active": 1, "expired": 0, "unleased_running": 0},
            },
            "sampler": {"samples": 9, "queue_out_mean_depth": 3.5},
        }
        text = render_status(status)
        assert "127.0.0.1:1234" in text
        assert "queued" in text and "4" in text
        assert "leases" in text
        assert "samples=9" in text

    def test_render_status_deltas(self):
        prev = {"service": {"address": "a", "requests": 100}}
        cur = {"service": {"address": "a", "requests": 150}}
        text = render_status(cur, prev, elapsed=10.0)
        assert "+5.0/s" in text

    def test_render_empty_payload(self):
        assert "empty" in render_status({})

    def test_render_stragglers_with_flags(self):
        from repro.telemetry.monitor import render_stragglers

        events = {
            "journal": {"enabled": True, "total_in_ring": 42, "dropped": 0},
            "stragglers": {
                "active": [
                    {
                        "task_id": 7, "work_type": 0, "phase": "run",
                        "elapsed_seconds": 9.5, "baseline_seconds": 1.0,
                        "threshold_seconds": 4.0, "ratio": 9.5, "source": "p1",
                    }
                ],
                "open_intervals": 3,
                "flagged_total": 1,
                "baselines": {"0/run": {"samples": 5, "median_seconds": 1.0}},
            },
        }
        text = render_stragglers(events)
        assert "9.5x" in text
        assert "0/run" in text
        assert "open intervals: 3" in text
        assert "enabled=True" in text

    def test_render_stragglers_quiet(self):
        from repro.telemetry.monitor import render_stragglers

        text = render_stragglers({"stragglers": {"active": []}})
        assert "no stragglers" in text

    def test_run_stragglers_against_live_server(self, capsys):
        from repro.telemetry.monitor import run_stragglers

        payload = {
            "journal": {"enabled": True, "total_in_ring": 1, "dropped": 0},
            "stragglers": {"active": [], "open_intervals": 0,
                           "flagged_total": 0, "baselines": {}},
        }
        server = StatusServer(
            port=0, metrics=MetricsRegistry(), events_fn=lambda: payload
        )
        with server:
            assert run_stragglers(server.url, once=True) == 0
            assert "no stragglers" in capsys.readouterr().out
            assert run_stragglers(server.url, once=True, json_mode=True) == 0
            assert json.loads(capsys.readouterr().out) == payload

    def test_run_stragglers_unreachable_exits_nonzero(self):
        from repro.telemetry.monitor import run_stragglers

        assert run_stragglers("127.0.0.1:1", once=True) == 1


class TestViewMinimalPayloads:
    """Regression: the monitor must render any /status payload a server
    can legally send — older servers omit optional sections and entry
    fields, and a KeyError here kills the operator's only live view."""

    def test_render_status_without_optional_sections(self):
        # Only the bare service block: no sampler, stragglers, or fleet.
        status = {"service": {"address": "a", "requests": 1}}
        text = render_status(status)
        assert "service" in text

    def test_render_status_store_missing_subsections(self):
        status = {"store": {"tasks": {"queued": 1}}}
        text = render_status(status)
        assert "queued" in text

    def test_render_status_straggler_entries_missing_fields(self):
        status = {
            "stragglers": {"active": [{}, {"task_id": 3}], "flagged_total": 2}
        }
        text = render_status(status)
        assert "active=2" in text
        assert "3:unclassified" in text

    def test_render_status_fleet_summary_line(self):
        status = {"fleet": {"workers": 4, "live": 3, "stale": 1}}
        text = render_status(status)
        assert "fleet: 4 workers (3 live, 1 stale)" in text

    def test_render_stragglers_empty_payload(self):
        from repro.telemetry.monitor import render_stragglers

        text = render_stragglers({})
        assert "no stragglers" in text
        assert "open intervals: 0" in text

    def test_render_stragglers_entries_missing_fields(self):
        from repro.telemetry.monitor import render_stragglers

        events = {"stragglers": {"active": [{}, {"task_id": 1, "ratio": 2.0}]}}
        text = render_stragglers(events)
        assert "2.0x" in text

    def test_render_stragglers_shows_verdict(self):
        from repro.telemetry.monitor import render_stragglers

        events = {
            "stragglers": {
                "active": [
                    {"task_id": 5, "classification": "stuck", "ratio": 8.0}
                ]
            }
        }
        assert "stuck" in render_stragglers(events)


class TestRenderFleet:
    def test_empty_fleet(self):
        from repro.telemetry.monitor import render_fleet

        text = render_fleet({})
        assert "0 workers" in text
        assert "no workers have pushed telemetry" in text

    def test_full_snapshot(self):
        from repro.telemetry.monitor import render_fleet

        fleet = {
            "counts": {"total": 2, "live": 1, "stale": 1},
            "workers": [
                {
                    "worker_id": "pool-a", "role": "pool", "state": "live",
                    "age_seconds": 0.5, "busy_fraction": 0.75, "owned": 3,
                    "tasks_completed": 10, "tasks_failed": 1,
                    "running": [{"task_id": 9}],
                },
                {"worker_id": "me-1", "role": "me", "state": "stale"},
            ],
            "profiles": {
                "0": {
                    "count": 10, "failed": 1,
                    "wall_p50_seconds": 0.01, "wall_p95_seconds": 0.05,
                    "cpu_p50_seconds": 0.008, "cpu_p95_seconds": 0.04,
                    "max_rss_kb": 2048.0,
                }
            },
            "top_cpu": [
                {"task_id": 9, "work_type": 0, "cpu_seconds": 0.04,
                 "wall_seconds": 0.05, "max_rss_delta_kb": 12.0}
            ],
        }
        text = render_fleet(fleet)
        assert "2 workers" in text
        assert "pool-a" in text and "75%" in text
        assert "me-1" in text and "stale" in text
        assert "2048" in text
        assert "top task" in text

    def test_worker_rows_missing_fields(self):
        from repro.telemetry.monitor import render_fleet

        text = render_fleet({"workers": [{}, {"worker_id": "w"}]})
        assert "w" in text

    def test_run_fleet_against_live_server(self, capsys):
        from repro.telemetry.monitor import run_fleet

        payload = {
            "counts": {"total": 1, "live": 1, "stale": 0},
            "workers": [{"worker_id": "p", "role": "pool", "state": "live"}],
            "profiles": {},
            "top_cpu": [],
        }
        server = StatusServer(
            port=0, metrics=MetricsRegistry(), fleet_fn=lambda: payload
        )
        with server:
            assert run_fleet(server.url, once=True) == 0
            assert "1 workers" in capsys.readouterr().out
            assert run_fleet(server.url, once=True, json_mode=True) == 0
            assert json.loads(capsys.readouterr().out) == payload

    def test_run_fleet_unreachable_exits_nonzero(self):
        from repro.telemetry.monitor import run_fleet

        assert run_fleet("127.0.0.1:1", once=True) == 1

    def test_fleet_route_404_without_fleet_fn(self):
        server = StatusServer(port=0, metrics=MetricsRegistry())
        with server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/fleet", timeout=5)
            assert err.value.code == 404

    def test_extra_metrics_appended_to_scrape(self):
        registry = MetricsRegistry()
        registry.counter("x.total", "x").inc()
        server = StatusServer(
            port=0,
            metrics=registry,
            extra_metrics_fn=lambda: "custom_series 42\n",
        )
        with server:
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
                body = r.read().decode()
            assert "custom_series 42" in body
            assert "x_total" in body

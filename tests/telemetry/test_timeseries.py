"""Tests for concurrency series and utilization statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import (
    TraceCollector,
    concurrency_series,
    mean_concurrency,
    sample_series,
    utilization_stats,
)
from repro.telemetry.timeseries import completion_counts, time_at_or_above


def make_trace(intervals, source="p"):
    """intervals: list of (start, stop) per task."""
    trace = TraceCollector()
    for i, (start, stop) in enumerate(intervals):
        trace.task_start(start, i, source=source)
        trace.task_stop(stop, i, source=source)
    return trace


class TestConcurrencySeries:
    def test_single_task(self):
        series = concurrency_series(make_trace([(1.0, 3.0)]).snapshot())
        assert series.value_at(0.5) == 0
        assert series.value_at(1.0) == 1
        assert series.value_at(2.9) == 1
        assert series.value_at(3.0) == 0

    def test_overlapping_tasks(self):
        series = concurrency_series(
            make_trace([(0.0, 4.0), (1.0, 3.0), (2.0, 5.0)]).snapshot()
        )
        assert series.value_at(0.5) == 1
        assert series.value_at(1.5) == 2
        assert series.value_at(2.5) == 3
        assert series.value_at(3.5) == 2
        assert series.value_at(4.5) == 1

    def test_empty(self):
        series = concurrency_series([])
        assert series.duration() == 0.0
        assert mean_concurrency(series) == 0.0

    def test_source_filter(self):
        trace = TraceCollector()
        trace.task_start(0.0, 1, source="a")
        trace.task_stop(2.0, 1, source="a")
        trace.task_start(0.0, 2, source="b")
        trace.task_stop(4.0, 2, source="b")
        series_a = concurrency_series(trace.snapshot(), source="a")
        assert series_a.value_at(1.0) == 1
        assert series_a.value_at(3.0) == 0

    def test_end_extension(self):
        series = concurrency_series(make_trace([(0.0, 1.0)]).snapshot(), end=10.0)
        assert series.end == 10.0
        assert series.duration() == 10.0

    def test_simultaneous_events_coalesce(self):
        series = concurrency_series(make_trace([(0.0, 1.0), (1.0, 2.0)]).snapshot())
        # At t=1 one task stops and another starts: net concurrency 1.
        assert series.value_at(1.0) == 1


class TestMeanConcurrency:
    def test_rectangle(self):
        # One task for 10s: mean is 1.
        series = concurrency_series(make_trace([(0.0, 10.0)]).snapshot())
        assert mean_concurrency(series) == pytest.approx(1.0)

    def test_half_busy(self):
        series = concurrency_series(make_trace([(0.0, 5.0)]).snapshot(), end=10.0)
        assert mean_concurrency(series) == pytest.approx(0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0.1, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_mean_equals_total_work_over_span(self, raw):
        intervals = [(s, s + d) for s, d in raw]
        series = concurrency_series(make_trace(intervals).snapshot())
        total_work = sum(d for _, d in raw)
        span = series.duration()
        assert mean_concurrency(series) * span == pytest.approx(total_work, rel=1e-9)


class TestUtilizationStats:
    def test_fully_busy_pool(self):
        # 3 tasks always running on 3 workers.
        intervals = [(0.0, 10.0)] * 3
        series = concurrency_series(make_trace(intervals).snapshot())
        stats = utilization_stats(series, n_workers=3)
        assert stats["utilization"] == pytest.approx(1.0)
        assert stats["idle_fraction"] == pytest.approx(0.0)
        assert stats["full_fraction"] == pytest.approx(1.0)

    def test_oversubscription_capped(self):
        # 6 concurrent tasks on 3 workers cannot exceed 3 running.
        intervals = [(0.0, 10.0)] * 6
        series = concurrency_series(make_trace(intervals).snapshot())
        stats = utilization_stats(series, n_workers=3)
        assert stats["mean_concurrency"] == pytest.approx(3.0)
        assert stats["utilization"] == pytest.approx(1.0)

    def test_sawtooth_dip(self):
        # Full for 5s, empty for 5s: half utilization, dip depth 2.
        intervals = [(0.0, 5.0), (0.0, 5.0)]
        series = concurrency_series(make_trace(intervals).snapshot(), end=10.0)
        stats = utilization_stats(series, n_workers=2)
        assert stats["utilization"] == pytest.approx(0.5)
        assert stats["full_fraction"] == pytest.approx(0.5)
        assert stats["dip_depth_mean"] == pytest.approx(2.0)

    def test_empty_series(self):
        stats = utilization_stats(concurrency_series([]), n_workers=4)
        assert stats["utilization"] == 0.0
        assert stats["idle_fraction"] == 1.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            utilization_stats(concurrency_series([]), n_workers=0)

    def test_time_at_or_above(self):
        intervals = [(0.0, 4.0), (0.0, 2.0)]
        series = concurrency_series(make_trace(intervals).snapshot())
        assert time_at_or_above(series, 2) == pytest.approx(0.5)
        assert time_at_or_above(series, 1) == pytest.approx(1.0)


class TestSampling:
    def test_sample_grid(self):
        series = concurrency_series(make_trace([(0.0, 10.0)]).snapshot())
        grid, values = sample_series(series, n_samples=11)
        assert len(grid) == 11
        assert np.all(values[:-1] == 1)

    def test_sample_empty(self):
        grid, values = sample_series(concurrency_series([]))
        assert grid.size == 0 and values.size == 0

    def test_completion_counts(self):
        trace = make_trace([(0.0, 3.0), (0.0, 1.0), (0.0, 2.0)])
        times, counts = completion_counts(trace.snapshot())
        assert list(times) == [1.0, 2.0, 3.0]
        assert list(counts) == [1, 2, 3]


class TestEmptyInputs:
    """Every reducer must return well-defined zeros on an empty stream —
    live monitoring summarizes series that often start out empty."""

    def test_empty_concurrency_series(self):
        series = concurrency_series([])
        assert series.times.size == 0
        assert series.duration() == 0.0
        assert series.value_at(123.0) == 0

    def test_mean_concurrency_empty(self):
        assert mean_concurrency(concurrency_series([])) == 0.0

    def test_time_at_or_above_empty(self):
        assert time_at_or_above(concurrency_series([]), 1) == 0.0

    def test_utilization_stats_empty(self):
        stats = utilization_stats(concurrency_series([]), n_workers=4)
        assert stats["mean_concurrency"] == 0.0
        assert stats["utilization"] == 0.0
        assert stats["idle_fraction"] == 1.0
        assert stats["full_fraction"] == 0.0

    def test_completion_counts_empty(self):
        times, counts = completion_counts([])
        assert times.size == 0 and counts.size == 0

    def test_single_instant_series(self):
        """All events at one instant: zero duration, no division blowup."""
        trace = make_trace([(2.0, 2.0)])
        series = concurrency_series(trace.snapshot())
        assert series.duration() == 0.0
        assert mean_concurrency(series) == 0.0
        stats = utilization_stats(series, n_workers=2)
        assert stats["utilization"] == 0.0

"""Tests for text rendering helpers."""

from __future__ import annotations

from repro.telemetry import ascii_chart, render_table


class TestAsciiChart:
    def test_empty(self):
        assert "(no data)" in ascii_chart([])

    def test_scaling_to_max(self):
        chart = ascii_chart([0, 5, 10], max_value=10)
        assert chart.startswith("|")
        assert chart.endswith("max=10")
        # Highest value maps to the full block.
        assert "█" in chart

    def test_label(self):
        assert ascii_chart([1], label="pool-1").startswith("pool-1 ")

    def test_resampling_long_series(self):
        chart = ascii_chart(list(range(1000)), width=40)
        body = chart.split("|")[1]
        assert len(body) == 40

    def test_all_zero_series(self):
        chart = ascii_chart([0, 0, 0])
        assert "█" not in chart


class TestRenderTable:
    def test_alignment_and_formatting(self):
        table = render_table(
            ["name", "value"], [["alpha", 1.23456], ["b", 2.0]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in table  # default .3f
        assert "2.000" in table

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_wide_cells_win(self):
        table = render_table(["x"], [["longer-than-header"]])
        header, sep, row = table.splitlines()
        assert len(sep) == len("longer-than-header")

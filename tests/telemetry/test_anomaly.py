"""Tests for the streaming straggler detector."""

from __future__ import annotations

import pytest

from repro.telemetry.anomaly import StragglerDetector
from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_FETCH,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_WITHDRAW,
    ROLE_DB,
    ROLE_POOL,
    Journal,
    JournalRecord,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.clock import VirtualClock


def _r(seq, time, event, task_id, work_type=0, role=ROLE_DB, source=""):
    return JournalRecord(
        seq, time, role, event, task_id, work_type=work_type, source=source
    )


def _complete_task(detector, task_id, t0, queue_s, run_s, work_type=0, seq0=1):
    """Feed one full enqueue→pop→report lifecycle."""
    detector.ingest(
        [
            _r(seq0, t0, EV_ENQUEUE, task_id, work_type),
            _r(seq0 + 1, t0 + queue_s, EV_POP, task_id, work_type),
            _r(seq0 + 2, t0 + queue_s + run_s, EV_REPORT, task_id, work_type),
        ]
    )


class TestBaselines:
    def test_baseline_needs_min_samples(self):
        detector = StragglerDetector(min_samples=3)
        for i in range(2):
            _complete_task(detector, i, t0=i * 10.0, queue_s=1.0, run_s=2.0)
        assert detector.baseline(0, "run") is None
        _complete_task(detector, 2, t0=20.0, queue_s=1.0, run_s=2.0)
        assert detector.baseline(0, "run") == 2.0
        assert detector.baseline(0, "queue") == 1.0

    def test_threshold_is_multiple_of_median_with_floor(self):
        detector = StragglerDetector(multiple=4.0, min_samples=1, min_seconds=10.0)
        _complete_task(detector, 1, t0=0.0, queue_s=0.5, run_s=2.0)
        assert detector.threshold(0, "run") == 10.0  # floor wins over 4*2
        _complete_task(detector, 2, t0=10.0, queue_s=0.5, run_s=4.0, seq0=10)
        assert detector.threshold(0, "run") == 12.0  # 4 * median(2, 4)

    def test_work_types_are_independent(self):
        detector = StragglerDetector(min_samples=1)
        _complete_task(detector, 1, t0=0.0, queue_s=1.0, run_s=1.0, work_type=0)
        _complete_task(detector, 2, t0=10.0, queue_s=1.0, run_s=9.0, work_type=5,
                       seq0=10)
        assert detector.baseline(0, "run") == 1.0
        assert detector.baseline(5, "run") == 9.0

    def test_non_db_records_ignored(self):
        detector = StragglerDetector(min_samples=1)
        consumed = detector.ingest(
            [
                _r(1, 0.0, EV_ENQUEUE, 1),
                _r(2, 1.0, EV_FETCH, 1, role=ROLE_POOL),
                _r(3, 2.0, EV_POP, 1),
            ]
        )
        assert consumed == 2  # pool record skipped

    def test_invalid_multiple_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            StragglerDetector(multiple=0)


class TestStateMachine:
    def test_requeue_reopens_queue_without_observing_run(self):
        detector = StragglerDetector(min_samples=1)
        detector.ingest(
            [
                _r(1, 0.0, EV_ENQUEUE, 1),
                _r(2, 1.0, EV_POP, 1),
                _r(3, 100.0, EV_REQUEUE, 1, work_type=-1),  # lease expired
                _r(4, 101.0, EV_POP, 1, work_type=-1),
                _r(5, 103.0, EV_REPORT, 1),
            ]
        )
        # The 99s dead lease never polluted the run baseline; only the
        # second (successful) run's 2s was observed.
        assert detector.baseline(0, "run") == 2.0
        # requeue/pop with work_type=-1 inherited the open interval's type
        assert detector.baseline(-1, "run") is None

    def test_withdraw_and_cancel_discard_open_interval(self):
        detector = StragglerDetector(min_samples=1)
        detector.ingest(
            [
                _r(1, 0.0, EV_ENQUEUE, 1),
                _r(2, 1.0, EV_CANCEL, 1),
                _r(3, 2.0, EV_ENQUEUE, 2),
                _r(4, 3.0, EV_POP, 2),
                _r(5, 4.0, EV_WITHDRAW, 2),
            ]
        )
        assert detector.summary(now=5.0)["open_intervals"] == 0
        assert detector.stragglers(now=1e9) == []

    def test_report_without_pop_observes_nothing(self):
        detector = StragglerDetector(min_samples=1)
        detector.ingest(
            [_r(1, 0.0, EV_ENQUEUE, 1), _r(2, 5.0, EV_REPORT, 1)]
        )
        assert detector.baseline(0, "run") is None
        assert detector.summary(now=6.0)["open_intervals"] == 0


class TestFlagging:
    def _warmed(self, **kwargs):
        detector = StragglerDetector(
            multiple=4.0, min_samples=3, **kwargs
        )
        for i in range(3):
            _complete_task(
                detector, i, t0=i * 10.0, queue_s=0.5, run_s=1.0, seq0=1 + 3 * i
            )
        return detector

    def test_flags_open_run_over_threshold(self):
        detector = self._warmed()
        detector.ingest(
            [_r(100, 50.0, EV_ENQUEUE, 99), _r(101, 50.5, EV_POP, 99, source="p1")]
        )
        assert detector.stragglers(now=52.0) == []  # 1.5s elapsed < 4*1
        (flag,) = detector.stragglers(now=60.0)  # 9.5s elapsed > 4
        assert flag["task_id"] == 99
        assert flag["phase"] == "run"
        assert flag["baseline_seconds"] == 1.0
        assert flag["threshold_seconds"] == 4.0
        assert flag["elapsed_seconds"] == pytest.approx(9.5)
        assert flag["ratio"] == pytest.approx(9.5)
        assert flag["source"] == "p1"

    def test_flags_stuck_queue_phase(self):
        detector = self._warmed()
        detector.ingest([_r(100, 50.0, EV_ENQUEUE, 99)])
        (flag,) = detector.stragglers(now=60.0)  # 10s queued vs 0.5 median
        assert flag["phase"] == "queue"

    def test_flagged_total_is_sticky_but_active_recovers(self):
        detector = self._warmed()
        detector.ingest(
            [_r(100, 50.0, EV_ENQUEUE, 99), _r(101, 50.5, EV_POP, 99)]
        )
        assert len(detector.stragglers(now=60.0)) == 1
        assert len(detector.stragglers(now=61.0)) == 1
        detector.ingest([_r(102, 62.0, EV_REPORT, 99)])
        summary = detector.summary(now=63.0)
        assert summary["active"] == []
        assert summary["flagged_total"] == 1  # counted once, stays counted

    def test_min_seconds_floor_suppresses_fast_noise(self):
        detector = self._warmed(min_seconds=100.0)
        detector.ingest(
            [_r(100, 50.0, EV_ENQUEUE, 99), _r(101, 50.5, EV_POP, 99)]
        )
        assert detector.stragglers(now=60.0) == []

    def test_worst_first_ordering(self):
        detector = self._warmed()
        detector.ingest(
            [
                _r(100, 50.0, EV_ENQUEUE, 7),
                _r(101, 50.0, EV_POP, 7),
                _r(102, 55.0, EV_ENQUEUE, 8),
                _r(103, 55.0, EV_POP, 8),
            ]
        )
        flags = detector.stragglers(now=61.0)
        assert [f["task_id"] for f in flags] == [7, 8]

    def test_gauges_track_active_and_total(self):
        registry = MetricsRegistry()
        detector = StragglerDetector(multiple=4.0, min_samples=1, metrics=registry)
        _complete_task(detector, 1, t0=0.0, queue_s=0.5, run_s=1.0)
        detector.ingest(
            [_r(10, 50.0, EV_ENQUEUE, 99), _r(11, 50.5, EV_POP, 99)]
        )
        detector.stragglers(now=60.0)
        assert registry.get("stragglers.active").value == 1
        assert registry.get("stragglers.flagged_total").value == 1
        detector.ingest([_r(12, 61.0, EV_REPORT, 99)])
        detector.stragglers(now=62.0)
        assert registry.get("stragglers.active").value == 0
        assert registry.get("stragglers.flagged_total").value == 1


class TestJournalStreaming:
    def test_ingest_reads_tail_incrementally(self):
        clock = VirtualClock()
        journal = Journal(clock=clock)
        detector = StragglerDetector(journal=journal, min_samples=1)
        journal.emit(EV_ENQUEUE, 1, role=ROLE_DB, work_type=0, time=0.0)
        journal.emit(EV_POP, 1, role=ROLE_DB, work_type=0, time=1.0)
        assert detector.ingest() == 2
        assert detector.ingest() == 0  # nothing new
        journal.emit(EV_REPORT, 1, role=ROLE_DB, work_type=0, time=3.0)
        assert detector.ingest() == 1
        assert detector.baseline(0, "run") == 2.0

    def test_ingest_without_journal_is_noop(self):
        assert StragglerDetector().ingest() == 0

    def test_clear_resets_cursor_and_state(self):
        journal = Journal(clock=VirtualClock())
        detector = StragglerDetector(journal=journal, min_samples=1)
        journal.emit(EV_ENQUEUE, 1, role=ROLE_DB, time=0.0)
        detector.ingest()
        detector.clear()
        assert detector.summary(now=1.0)["open_intervals"] == 0
        # cursor reset: the same record is consumable again
        assert detector.ingest() == 1


class TestSummary:
    def test_summary_shape(self):
        detector = StragglerDetector(multiple=3.0, min_samples=2)
        for i in range(2):
            _complete_task(
                detector, i, t0=i * 10.0, queue_s=1.0, run_s=2.0, seq0=1 + 3 * i
            )
        detector.ingest([_r(50, 30.0, EV_ENQUEUE, 9)])
        summary = detector.summary(now=31.0)
        assert summary["multiple"] == 3.0
        assert summary["min_samples"] == 2
        assert summary["open_intervals"] == 1
        assert summary["flagged_total"] == 0
        assert summary["baselines"]["0/queue"] == {
            "samples": 2, "median_seconds": 1.0,
        }
        assert summary["baselines"]["0/run"]["median_seconds"] == 2.0

"""Per-task resource profiling primitives.

The profile is the unit of fleet aggregation: its dict form rides the
report wire and the push envelope, so round-tripping and omission rules
matter as much as the measurements themselves.
"""

from __future__ import annotations

import threading
import time

from repro.telemetry.profiling import (
    ProfileHandle,
    TaskProfile,
    TaskProfiler,
    max_rss_kb,
    thread_cpu_seconds,
)


def spin(seconds: float) -> None:
    """Burn CPU (not sleep) so cpu_seconds moves."""
    t0 = time.thread_time()
    x = 0
    while time.thread_time() - t0 < seconds:
        x += 1


class TestTaskProfile:
    def test_to_dict_omits_absent_fields(self):
        profile = TaskProfile(
            task_id=7, work_type=2, wall_seconds=1.5, cpu_seconds=1.0
        )
        d = profile.to_dict()
        assert d == {
            "task_id": 7,
            "work_type": 2,
            "wall_seconds": 1.5,
            "cpu_seconds": 1.0,
        }
        assert "failed" not in d
        assert "max_rss_kb" not in d

    def test_round_trip(self):
        profile = TaskProfile(
            task_id=3,
            work_type=1,
            wall_seconds=2.0,
            cpu_seconds=0.5,
            max_rss_kb=1024.0,
            max_rss_delta_kb=16.0,
            alloc_peak_kb=8.0,
            failed=True,
        )
        back = TaskProfile.from_dict(profile.to_dict())
        assert back == profile

    def test_from_dict_defaults(self):
        back = TaskProfile.from_dict({})
        assert back.task_id == -1
        assert back.work_type == -1
        assert back.wall_seconds == 0.0
        assert back.max_rss_kb is None
        assert not back.failed

    def test_cpu_fraction(self):
        busy = TaskProfile(1, 0, wall_seconds=2.0, cpu_seconds=2.0)
        idle = TaskProfile(2, 0, wall_seconds=2.0, cpu_seconds=0.0)
        degenerate = TaskProfile(3, 0, wall_seconds=0.0, cpu_seconds=1.0)
        assert busy.cpu_fraction == 1.0
        assert idle.cpu_fraction == 0.0
        assert degenerate.cpu_fraction == 0.0


class TestProfileHandle:
    def test_finish_measures_wall_and_cpu(self):
        handle = TaskProfiler().start(1, 0)
        spin(0.05)
        profile = handle.finish()
        assert profile.task_id == 1
        assert profile.work_type == 0
        assert profile.wall_seconds > 0.0
        assert profile.cpu_seconds > 0.0
        assert not profile.failed

    def test_finish_failed_flag(self):
        profile = TaskProfiler().start(2, 1).finish(failed=True)
        assert profile.failed
        assert profile.to_dict()["failed"] is True

    def test_sleep_is_wall_not_cpu(self):
        handle = TaskProfiler().start(3, 0)
        time.sleep(0.05)
        profile = handle.finish()
        assert profile.wall_seconds >= 0.04
        # Sleeping burns (almost) no CPU — the slow-vs-stuck signal.
        assert profile.cpu_seconds < profile.wall_seconds / 2

    def test_live_snapshot_from_another_thread(self):
        handles: dict[str, ProfileHandle] = {}
        release = threading.Event()

        def work():
            handles["h"] = TaskProfiler().start(9, 4)
            release.wait(5)

        t = threading.Thread(target=work)
        t.start()
        try:
            deadline = time.monotonic() + 5
            while "h" not in handles and time.monotonic() < deadline:
                time.sleep(0.001)
            time.sleep(0.02)
            live = handles["h"].live()
            assert live["task_id"] == 9
            assert live["work_type"] == 4
            assert live["elapsed_seconds"] > 0.0
            # cpu_seconds present only on procfs platforms; when present
            # it must be a sane non-negative number.
            if "cpu_seconds" in live:
                assert live["cpu_seconds"] >= 0.0
        finally:
            release.set()
            t.join(5)


class TestHostProbes:
    def test_max_rss_nonnegative_on_posix(self):
        rss = max_rss_kb()
        if rss is not None:
            assert rss > 0

    def test_thread_cpu_seconds_self(self):
        tid = threading.get_native_id()
        cpu = thread_cpu_seconds(tid)
        if cpu is not None:
            spin(0.05)
            later = thread_cpu_seconds(tid)
            assert later is not None
            assert later >= cpu

    def test_thread_cpu_seconds_dead_tid(self):
        # A wildly bogus tid must return None, never raise.
        assert thread_cpu_seconds(2**31 - 7) is None


class TestTaskProfilerMemory:
    def test_memory_profiling_reports_alloc_peak(self):
        profiler = TaskProfiler(memory=True)
        handle = profiler.start(5, 0)
        size = 1024  # variable so the constant folder can't share one object
        blob = [bytearray(size) for _ in range(512)]  # ~512 KB live
        profile = handle.finish()
        del blob
        assert profiler.memory
        assert profile.alloc_peak_kb is not None
        assert profile.alloc_peak_kb >= 256.0

    def test_default_profiler_has_no_alloc_peak(self):
        profile = TaskProfiler().start(6, 0).finish()
        assert profile.alloc_peak_kb is None

"""Tests for DB-derived timing statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.telemetry.dbstats import TimingSummary, task_timing_stats
from repro.util.clock import VirtualClock


@pytest.fixture
def eq():
    clock = VirtualClock()
    eqsql = EQSQL(MemoryTaskStore(), clock=clock)
    yield eqsql, clock
    eqsql.close()


class TestTimingSummary:
    def test_from_values(self):
        summary = TimingSummary.from_values(np.array([1.0, 2.0, 3.0, 4.0]))
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.max == 4.0

    def test_empty(self):
        summary = TimingSummary.from_values(np.array([]))
        assert summary.count == 0
        assert summary.mean == 0.0


class TestTaskTimingStats:
    def test_waits_and_runtimes_from_virtual_clock(self, eq):
        eqsql, clock = eq
        futures = eqsql.submit_tasks("exp", 0, ["a", "b"])  # created at t=0
        clock.advance(5)
        first = eqsql.query_task(0, worker_pool="p1", timeout=0)  # starts t=5
        clock.advance(3)
        eqsql.report_task(first["eq_task_id"], 0, "r")  # stops t=8
        clock.advance(2)
        second = eqsql.query_task(0, worker_pool="p2", timeout=0)  # starts t=10
        clock.advance(1)
        eqsql.report_task(second["eq_task_id"], 0, "r")  # stops t=11

        stats = task_timing_stats(eqsql, "exp")
        assert stats.queue_wait.count == 2
        assert stats.queue_wait.mean == pytest.approx((5 + 10) / 2)
        assert stats.runtime.mean == pytest.approx((3 + 1) / 2)
        assert stats.per_pool_completed == {"p1": 1, "p2": 1}
        assert stats.n_incomplete == 0
        del futures

    def test_incomplete_tasks_counted_not_measured(self, eq):
        eqsql, clock = eq
        eqsql.submit_tasks("exp", 0, ["a", "b", "c"])
        message = eqsql.query_task(0, timeout=0)
        eqsql.report_task(message["eq_task_id"], 0, "r")
        eqsql.query_task(0, timeout=0)  # running, never reported
        stats = task_timing_stats(eqsql, "exp")
        assert stats.queue_wait.count == 1
        assert stats.n_incomplete == 2

    def test_empty_experiment(self, eq):
        eqsql, _ = eq
        stats = task_timing_stats(eqsql, "ghost")
        assert stats.queue_wait.count == 0
        assert stats.per_pool_completed == {}

    def test_matches_des_scenario(self):
        """DB stats over a full DES run agree with the runtime model."""
        # A dedicated run we can introspect: rebuild the pieces inline.
        from repro.db import MemoryTaskStore as Store_
        from repro.sim import SimPoolConfig, SimWorkerPool
        from repro.simt import Environment

        env = Environment()
        eqsql = EQSQL(Store_(), clock=env.clock)
        eqsql.submit_tasks("des", 0, ["t"] * 40)
        pool = SimWorkerPool(
            env, eqsql, SimPoolConfig(name="p", n_workers=5, query_cost=0.1),
            runtime_fn=lambda tid, _p: 7.0,
        ).start()
        while pool.tasks_completed < 40:
            env.step()
        stats = task_timing_stats(eqsql, "des")
        assert stats.runtime.count == 40
        assert stats.runtime.mean == pytest.approx(7.0)
        # Later waves wait longer than the first.
        assert stats.queue_wait.max > stats.queue_wait.median
        eqsql.close()


class TestTimingSummaryEmptyInputs:
    """Regression: from_values must accept any sequence, including an
    empty plain list (it used to require an ndarray with .size)."""

    def test_empty_list(self):
        summary = TimingSummary.from_values([])
        assert summary == TimingSummary(count=0, mean=0.0, median=0.0,
                                        p95=0.0, max=0.0)

    def test_empty_array(self):
        assert TimingSummary.from_values(np.array([])).count == 0

    def test_plain_list(self):
        summary = TimingSummary.from_values([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.max == 3.0

    def test_tuple_and_generator_free_sequences(self):
        assert TimingSummary.from_values((5.0,)).count == 1

    def test_empty_tasks_table(self):
        """dbstats over a store with zero tasks: all-zero summaries."""
        eqsql = EQSQL(MemoryTaskStore())
        try:
            stats = task_timing_stats(eqsql, "never-ran")
            assert stats.queue_wait.count == 0
            assert stats.runtime == TimingSummary(count=0, mean=0.0,
                                                  median=0.0, p95=0.0, max=0.0)
            assert stats.n_incomplete == 0
        finally:
            eqsql.close()

"""Tests for the trace collector."""

from __future__ import annotations

import threading

from repro.telemetry import EventKind, TraceCollector


class TestTraceCollector:
    def test_record_and_snapshot_sorted(self):
        trace = TraceCollector()
        trace.task_stop(5.0, 2, source="p1")
        trace.task_start(1.0, 1, source="p1")
        trace.task_start(3.0, 2, source="p2")
        snap = trace.snapshot()
        assert [e.time for e in snap] == [1.0, 3.0, 5.0]
        assert len(trace) == 3

    def test_filter_by_kind_and_source(self):
        trace = TraceCollector()
        trace.task_start(1.0, 1, source="a")
        trace.task_stop(2.0, 1, source="a")
        trace.task_start(3.0, 2, source="b")
        starts = trace.filter(kind=EventKind.TASK_START)
        assert [e.task_id for e in starts] == [1, 2]
        a_events = trace.filter(source="a")
        assert len(a_events) == 2
        assert trace.filter(kind=EventKind.TASK_STOP, source="b") == []

    def test_sources_first_seen_order(self):
        trace = TraceCollector()
        trace.task_start(1.0, 1, source="z")
        trace.task_start(2.0, 2, source="a")
        trace.task_start(3.0, 3, source="z")
        assert trace.sources() == ["z", "a"]

    def test_generic_record_with_detail(self):
        trace = TraceCollector()
        trace.record(EventKind.FETCH, 1.5, source="pool", detail="33")
        event = trace.snapshot()[0]
        assert event.kind == EventKind.FETCH
        assert event.detail == "33"
        assert event.task_id is None

    def test_thread_safety(self):
        trace = TraceCollector()

        def writer(base):
            for i in range(500):
                trace.task_start(float(i), base + i, source=f"s{base}")

        threads = [threading.Thread(target=writer, args=(k * 1000,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace) == 2000
        ids = [e.task_id for e in trace.snapshot()]
        assert len(set(ids)) == 2000


class TestJournalUnification:
    """The legacy event stream and the flight recorder share one vocabulary."""

    def test_every_kind_maps_into_journal_vocabulary(self):
        from repro.telemetry import journal as j

        expected = {
            EventKind.TASK_START: j.EV_RUN_START,
            EventKind.TASK_STOP: j.EV_RUN_END,
            EventKind.FETCH: j.EV_FETCH,
            EventKind.POOL_START: j.EV_POOL_START,
            EventKind.POOL_STOP: j.EV_POOL_STOP,
            EventKind.PHASE_START: j.EV_PHASE_START,
            EventKind.PHASE_STOP: j.EV_PHASE_STOP,
        }
        for kind in EventKind:
            assert kind.journal_event == expected[kind]

    def test_collector_forwards_into_journal(self):
        from repro.telemetry.journal import EV_RUN_START, ROLE_POOL, Journal

        journal = Journal()
        trace = TraceCollector(journal=journal)
        trace.task_start(1.5, 7, source="p1")
        trace.record(EventKind.PHASE_START, 2.0, source="algo", detail="sweep")
        records = journal.records()
        assert len(records) == 2
        start = records[0]
        assert start.event == EV_RUN_START
        assert start.role == ROLE_POOL
        assert (start.task_id, start.time, start.source) == (7, 1.5, "p1")
        phase = records[1]
        assert phase.task_id == -1  # phase events carry no task id
        assert phase.extra == {"detail": "sweep"}
        # the legacy stream itself is unaffected
        assert len(trace) == 2

    def test_disabled_journal_receives_nothing(self):
        from repro.telemetry.journal import Journal

        journal = Journal(enabled=False)
        trace = TraceCollector(journal=journal)
        trace.task_start(1.0, 1)
        assert len(journal) == 0
        assert len(trace) == 1

    def test_bare_collector_unchanged(self):
        trace = TraceCollector()
        trace.task_start(1.0, 1)
        assert trace._journal is None
        assert len(trace) == 1

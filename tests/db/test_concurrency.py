"""Concurrency tests: multiple pools popping one queue never share a task.

This is the safety property that makes the paper's multi-pool
architecture sound — Fig 4's three worker pools drain one output queue
"equitably" only because the pop path is atomic.
"""

from __future__ import annotations

import threading

import pytest

from repro.db import MemoryTaskStore, SqliteTaskStore


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_concurrent_pop_no_duplicates(backend):
    store = MemoryTaskStore() if backend == "memory" else SqliteTaskStore(":memory:")
    n_tasks = 600
    store.create_tasks("e", 0, [f"p{i}" for i in range(n_tasks)])
    popped: list[int] = []
    lock = threading.Lock()

    def pool(name: str):
        local: list[int] = []
        while True:
            got = store.pop_out(0, 7, worker_pool=name)
            if not got:
                break
            local.extend(tid for tid, _ in got)
        with lock:
            popped.extend(local)

    threads = [threading.Thread(target=pool, args=(f"pool-{i}",)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(popped) == n_tasks
    assert len(set(popped)) == n_tasks
    store.close()


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_concurrent_submit_and_pop(backend):
    store = MemoryTaskStore() if backend == "memory" else SqliteTaskStore(":memory:")
    n_producers, per_producer = 4, 100
    total = n_producers * per_producer
    done = threading.Event()
    popped: list[int] = []
    lock = threading.Lock()

    def producer(k: int):
        for i in range(per_producer):
            store.create_task(f"exp-{k}", 0, f"p-{k}-{i}")

    def consumer():
        while True:
            got = store.pop_out(0, 5)
            if got:
                with lock:
                    popped.extend(tid for tid, _ in got)
                    if len(popped) >= total:
                        done.set()
            elif done.is_set():
                break

    producers = [threading.Thread(target=producer, args=(k,)) for k in range(n_producers)]
    consumers = [threading.Thread(target=consumer) for _ in range(3)]
    for t in consumers + producers:
        t.start()
    for t in producers:
        t.join()
    # Producers finished; consumers drain the rest then observe `done`.
    for t in consumers:
        t.join(timeout=30)

    assert len(popped) == total
    assert len(set(popped)) == total
    store.close()


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_concurrent_report_and_pop_in(backend):
    store = MemoryTaskStore() if backend == "memory" else SqliteTaskStore(":memory:")
    ids = store.create_tasks("e", 0, ["p"] * 200)
    store.pop_out(0, 200)

    def reporter(chunk):
        for tid in chunk:
            store.report(tid, 0, f"r{tid}")

    threads = [
        threading.Thread(target=reporter, args=(ids[i::4],)) for i in range(4)
    ]
    for t in threads:
        t.start()

    collected: dict[int, str] = {}
    while len(collected) < 200:
        for tid, result in store.pop_in_any(ids):
            assert tid not in collected
            collected[tid] = result
    for t in threads:
        t.join()

    assert collected == {tid: f"r{tid}" for tid in ids}
    store.close()

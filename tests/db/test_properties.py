"""Property-based tests of queue invariants (hypothesis).

The central invariant from §IV-C: the output queue pops in
(priority DESC, task id ASC) order no matter what interleaving of
submissions and reprioritizations produced it; and every task is popped
at most once.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.db.schema import TaskStatus

BACKENDS = [MemoryTaskStore, lambda: SqliteTaskStore(":memory:")]

priorities_lists = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=1, max_size=40
)


@st.composite
def submissions_and_updates(draw):
    """Initial priorities plus a set of (index, new_priority) updates."""
    priorities = draw(priorities_lists)
    n_updates = draw(st.integers(min_value=0, max_value=10))
    updates = [
        (
            draw(st.integers(min_value=0, max_value=len(priorities) - 1)),
            draw(st.integers(min_value=-100, max_value=100)),
        )
        for _ in range(n_updates)
    ]
    return priorities, updates


@settings(max_examples=60, deadline=None)
@given(data=submissions_and_updates(), backend_idx=st.integers(min_value=0, max_value=1))
def test_pop_order_matches_final_priorities(data, backend_idx):
    priorities, updates = data
    store = BACKENDS[backend_idx]()
    try:
        ids = store.create_tasks("e", 0, ["p"] * len(priorities), priority=priorities)
        final = dict(zip(ids, priorities))
        for idx, new_priority in updates:
            store.update_priorities([ids[idx]], new_priority)
            final[ids[idx]] = new_priority
        popped = [tid for tid, _ in store.pop_out(0, len(ids) + 5)]
        # Every task popped exactly once.
        assert sorted(popped) == sorted(ids)
        # Pop order equals (priority DESC, id ASC) on final priorities.
        expected = sorted(ids, key=lambda t: (-final[t], t))
        assert popped == expected
    finally:
        store.close()


@settings(max_examples=40, deadline=None)
@given(
    priorities=priorities_lists,
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
    backend_idx=st.integers(min_value=0, max_value=1),
)
def test_cancel_removes_exactly_the_canceled(priorities, cancel_mask, backend_idx):
    store = BACKENDS[backend_idx]()
    try:
        ids = store.create_tasks("e", 0, ["p"] * len(priorities), priority=priorities)
        to_cancel = [t for t, c in zip(ids, cancel_mask) if c]
        assert store.cancel_tasks(to_cancel) == len(to_cancel)
        popped = {tid for tid, _ in store.pop_out(0, len(ids))}
        assert popped == set(ids) - set(to_cancel)
        for tid in to_cancel:
            assert store.get_task(tid).eq_status == TaskStatus.CANCELED
    finally:
        store.close()


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    report_order=st.permutations(range(30)),
    backend_idx=st.integers(min_value=0, max_value=1),
)
def test_input_queue_delivers_every_result_once(n, report_order, backend_idx):
    store = BACKENDS[backend_idx]()
    try:
        ids = store.create_tasks("e", 0, [f"p{i}" for i in range(n)])
        store.pop_out(0, n)
        order = [i for i in report_order if i < n]
        for i in order:
            store.report(ids[i], 0, f"r{i}")
        got = dict(store.pop_in_any(ids))
        assert got == {ids[i]: f"r{i}" for i in range(n)}
        assert store.pop_in_any(ids) == []
    finally:
        store.close()

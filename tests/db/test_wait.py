"""Blocking long-poll (``wait=``) semantics of the store backends.

The contract under test (see ``TaskStore.pop_out``/``pop_in_any``):
a wait over satisfiable state returns immediately; a wait over empty
state blocks until the one write it watches lands, the deadline passes,
or ``wake_waiters``/``close`` interrupts it.  Wait deadlines are real
wall-clock time — these tests measure elapsed ``time.monotonic`` and
use generous bounds so they stay robust under CI load.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.db import MemoryTaskStore, SqliteTaskStore

# Every test here asserts wall-clock bounds; on a badly loaded machine
# they can exceed even generous ceilings, so the whole module carries
# the ``timing`` marker (deselect with ``-m 'not timing'``).
pytestmark = pytest.mark.timing

#: A wait long enough that only an event-driven wake can explain an
#: early return, short enough that a missed wakeup fails fast.
WAIT = 5.0
#: Generous ceiling for "returned instantly / on the wake" under load.
PROMPT = 3.0
#: Deadline for the "must NOT wake" shapes: long enough that the lower
#: bound below has margin over scheduler jitter in both directions.
NO_WAKE_WAIT = 0.5
#: Minimum elapsed proving a no-wake wait really ran its deadline out.
NO_WAKE_FLOOR = 0.4


def _claim(store, eq_type=0, n=1, wait=None):
    return store.pop_out(eq_type, n, worker_pool="w", now=1.0, wait=wait)


class _BlockedCall:
    """Run one store call in a helper thread; join and return result."""

    def __init__(self, fn):
        self.outcome = []
        self.thread = threading.Thread(
            target=lambda: self.outcome.append(self._guard(fn))
        )
        self.started = time.monotonic()
        self.thread.start()

    @staticmethod
    def _guard(fn):
        try:
            return ("ok", fn())
        except BaseException as exc:  # re-raised on the test thread
            return ("raised", exc)

    def join(self, timeout=WAIT + PROMPT):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "blocked call never returned"
        self.elapsed = time.monotonic() - self.started
        kind, value = self.outcome[0]
        if kind == "raised":
            raise value
        return value


class TestPopOutWait:
    def test_returns_immediately_when_work_is_queued(self, store):
        [tid] = store.create_tasks("e", 0, ["p"], time_created=0.0)
        t0 = time.monotonic()
        assert _claim(store, wait=WAIT) == [(tid, "p")]
        assert time.monotonic() - t0 < PROMPT

    def test_zero_wait_is_nonblocking(self, store):
        t0 = time.monotonic()
        assert _claim(store, wait=0) == []
        assert time.monotonic() - t0 < PROMPT

    def test_empty_queue_expires_after_the_deadline(self, store):
        t0 = time.monotonic()
        assert _claim(store, wait=0.05) == []
        elapsed = time.monotonic() - t0
        assert 0.04 <= elapsed < PROMPT

    def test_wakes_on_create(self, store):
        blocked = _BlockedCall(lambda: _claim(store, wait=WAIT))
        time.sleep(0.05)
        [tid] = store.create_tasks("e", 0, ["p"], time_created=0.0)
        assert blocked.join() == [(tid, "p")]
        assert blocked.elapsed < PROMPT

    def test_wakes_on_requeue_expired(self, store):
        [tid] = store.create_tasks("e", 0, ["p"], time_created=0.0)
        assert store.pop_out(0, 1, worker_pool="dead", now=1.0, lease=2.0)
        blocked = _BlockedCall(lambda: _claim(store, wait=WAIT))
        time.sleep(0.05)
        assert store.requeue_expired(now=10.0) == [tid]
        assert blocked.join() == [(tid, "p")]
        assert blocked.elapsed < PROMPT

    def test_does_not_wake_for_another_work_type(self, store):
        blocked = _BlockedCall(
            lambda: _claim(store, eq_type=0, wait=NO_WAKE_WAIT)
        )
        time.sleep(0.05)
        store.create_tasks("e", 1, ["other"], time_created=0.0)
        assert blocked.join() == []
        # The type-1 create must not have ended the type-0 wait early.
        assert blocked.elapsed >= NO_WAKE_FLOOR

    def test_wake_waiters_interrupts_with_empty(self, store):
        blocked = _BlockedCall(lambda: _claim(store, wait=WAIT))
        time.sleep(0.05)
        store.wake_waiters()
        assert blocked.join() == []
        assert blocked.elapsed < PROMPT

    def test_close_interrupts_with_error(self, store):
        blocked = _BlockedCall(lambda: _claim(store, wait=WAIT))
        time.sleep(0.05)
        store.close()
        with pytest.raises(RuntimeError):
            blocked.join()
        assert blocked.elapsed < PROMPT


class TestPopInAnyWait:
    @pytest.fixture
    def running(self, store):
        [tid] = store.create_tasks("e", 0, ["p"], time_created=0.0)
        assert _claim(store)
        return store, tid

    def test_returns_immediately_when_result_is_in(self, running):
        store, tid = running
        store.report(tid, 0, "r", now=2.0)
        t0 = time.monotonic()
        assert store.pop_in_any([tid], wait=WAIT) == [(tid, "r")]
        assert time.monotonic() - t0 < PROMPT

    def test_empty_expires_after_the_deadline(self, running):
        store, tid = running
        t0 = time.monotonic()
        assert store.pop_in_any([tid], wait=0.05) == []
        assert 0.04 <= time.monotonic() - t0 < PROMPT

    def test_wakes_on_report(self, running):
        store, tid = running
        blocked = _BlockedCall(lambda: store.pop_in_any([tid], wait=WAIT))
        time.sleep(0.05)
        store.report(tid, 0, "r", now=2.0)
        assert blocked.join() == [(tid, "r")]
        assert blocked.elapsed < PROMPT

    def test_wakes_on_report_batch(self, running):
        store, tid = running
        blocked = _BlockedCall(lambda: store.pop_in_any([tid], wait=WAIT))
        time.sleep(0.05)
        store.report_batch([(tid, 0, "r")], now=2.0)
        assert blocked.join() == [(tid, "r")]
        assert blocked.elapsed < PROMPT

    def test_does_not_wake_for_unwatched_task(self, store):
        ids = store.create_tasks("e", 0, ["a", "b"], time_created=0.0)
        store.pop_out(0, 2, worker_pool="w", now=1.0)
        blocked = _BlockedCall(
            lambda: store.pop_in_any([ids[0]], wait=NO_WAKE_WAIT)
        )
        time.sleep(0.05)
        store.report(ids[1], 0, "other", now=2.0)
        assert blocked.join() == []
        assert blocked.elapsed >= NO_WAKE_FLOOR

    def test_wake_waiters_interrupts_with_empty(self, running):
        store, tid = running
        blocked = _BlockedCall(lambda: store.pop_in_any([tid], wait=WAIT))
        time.sleep(0.05)
        store.wake_waiters()
        assert blocked.join() == []
        assert blocked.elapsed < PROMPT


class TestCrossProcessDegradedMode:
    """Two sqlite handles on one file share no condvars: the waiter's
    internal re-poll (``wait_poll_interval``) must find foreign writes."""

    def test_waiter_discovers_foreign_create(self, tmp_path):
        path = str(tmp_path / "shared.db")
        reader = SqliteTaskStore(path, wait_poll_interval=0.02)
        writer = SqliteTaskStore(path)
        try:
            blocked = _BlockedCall(lambda: _claim(reader, wait=WAIT))
            time.sleep(0.05)
            [tid] = writer.create_tasks("e", 0, ["p"], time_created=0.0)
            assert blocked.join() == [(tid, "p")]
            assert blocked.elapsed < PROMPT
        finally:
            reader.close()
            writer.close()

    def test_waiter_discovers_foreign_report(self, tmp_path):
        path = str(tmp_path / "shared.db")
        reader = SqliteTaskStore(path, wait_poll_interval=0.02)
        writer = SqliteTaskStore(path)
        try:
            [tid] = writer.create_tasks("e", 0, ["p"], time_created=0.0)
            assert _claim(writer)
            blocked = _BlockedCall(
                lambda: reader.pop_in_any([tid], wait=WAIT)
            )
            time.sleep(0.05)
            writer.report(tid, 0, "r", now=2.0)
            assert blocked.join() == [(tid, "r")]
            assert blocked.elapsed < PROMPT
        finally:
            reader.close()
            writer.close()


class TestCapabilityFlag:
    def test_real_backends_advertise_wait(self, store):
        assert store.supports_wait is True

    def test_base_contract_defaults_to_no_wait(self):
        from repro.db.backend import TaskStore

        assert TaskStore.supports_wait is False

    def test_memory_store_flag(self):
        s = MemoryTaskStore()
        try:
            assert s.supports_wait
        finally:
            s.close()

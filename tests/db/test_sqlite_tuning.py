"""SQLite throughput tuning: WAL journaling and its durability opt-out.

The tuned store trades a sliver of durability (an OS crash may lose the
tail of the WAL — never corrupt the DB) for write throughput; callers
that need classic rollback-journal semantics pass ``durable=True``.
"""

from __future__ import annotations

from repro.db import SqliteTaskStore


def pragma(store, name):
    return store._conn.execute(f"PRAGMA {name}").fetchone()[0]


class TestWalTuning:
    def test_file_store_defaults_to_wal_normal(self, tmp_path):
        store = SqliteTaskStore(str(tmp_path / "emews.db"))
        try:
            assert pragma(store, "journal_mode") == "wal"
            assert pragma(store, "synchronous") == 1  # NORMAL
            assert store.durable is False
        finally:
            store.close()

    def test_durable_opt_out_keeps_rollback_journal(self, tmp_path):
        store = SqliteTaskStore(str(tmp_path / "emews.db"), durable=True)
        try:
            assert pragma(store, "journal_mode") == "delete"
            assert pragma(store, "synchronous") == 2  # FULL
            assert store.durable is True
        finally:
            store.close()

    def test_memory_store_skips_wal(self):
        # WAL requires a real file; :memory: must not pretend otherwise.
        store = SqliteTaskStore(":memory:")
        try:
            assert pragma(store, "journal_mode") == "memory"
        finally:
            store.close()

    def test_wal_data_survives_reopen(self, tmp_path):
        path = str(tmp_path / "emews.db")
        store = SqliteTaskStore(path)
        ids = store.create_tasks("exp", 0, ["a", "b", "c"])
        store.pop_out(0, 1)
        store.report(ids[0], 0, "r")
        store.close()
        reopened = SqliteTaskStore(path)
        try:
            assert reopened.max_task_id() == ids[-1]
            assert reopened.queue_out_length(0) == 2
            assert reopened.pop_in(ids[0]) == "r"
        finally:
            reopened.close()

"""Both backends emit identical flight-recorder records at every hop."""

from __future__ import annotations

import pytest

from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.telemetry.journal import (
    EV_CANCEL,
    EV_ENQUEUE,
    EV_LEASE_RENEW,
    EV_POP,
    EV_REPORT,
    EV_REQUEUE,
    EV_WITHDRAW,
    ROLE_DB,
    Journal,
)
from repro.util.clock import VirtualClock


@pytest.fixture(params=["memory", "sqlite"])
def journaled_store(request):
    journal = Journal(clock=VirtualClock())
    if request.param == "memory":
        store = MemoryTaskStore(journal=journal)
    else:
        store = SqliteTaskStore(":memory:", journal=journal)
    yield store, journal
    store.close()


def events_for(journal: Journal, task_id: int) -> list[str]:
    return [r.event for r in journal.records(task_id=task_id)]


class TestLifecycleEmits:
    def test_happy_path(self, journaled_store):
        store, journal = journaled_store
        (tid,) = store.create_tasks("exp", 0, ["{}"], time_created=1.0)
        ((popped, _),) = store.pop_out(
            0, n=1, worker_pool="p1", now=2.0, lease=30.0
        )
        assert popped == tid
        store.renew_leases([tid], now=10.0, lease=30.0)
        store.report(tid, 0, "{}", now=20.0)
        assert events_for(journal, tid) == [
            EV_ENQUEUE, EV_POP, EV_LEASE_RENEW, EV_REPORT,
        ]
        records = journal.records(task_id=tid)
        assert all(r.role == ROLE_DB for r in records)
        assert [r.time for r in records] == [1.0, 2.0, 10.0, 20.0]
        enqueue, pop, renew, report = records
        assert enqueue.work_type == 0
        assert pop.source == "p1"
        assert pop.extra == {"lease": 30.0}
        assert renew.source == "p1"
        assert report.source == "p1"

    def test_single_create_task_emits_enqueue(self, journaled_store):
        store, journal = journaled_store
        tid = store.create_task("exp", 2, "{}", priority=5, time_created=3.0)
        (record,) = journal.records(task_id=tid)
        assert record.event == EV_ENQUEUE
        assert record.work_type == 2
        assert record.extra == {"exp_id": "exp", "priority": 5}

    def test_lease_expiry_requeue(self, journaled_store):
        store, journal = journaled_store
        (tid,) = store.create_tasks("exp", 0, ["{}"])
        store.pop_out(0, n=1, worker_pool="doomed", now=0.0, lease=1.0)
        assert store.requeue_expired(now=5.0) == [tid]
        events = events_for(journal, tid)
        assert events == [EV_ENQUEUE, EV_POP, EV_REQUEUE]
        requeue = journal.records(task_id=tid)[-1]
        assert requeue.time == 5.0
        assert requeue.source == "doomed"  # which pool lost it

    def test_late_report_withdraws_requeued_copy(self, journaled_store):
        store, journal = journaled_store
        (tid,) = store.create_tasks("exp", 0, ["{}"])
        store.pop_out(0, n=1, worker_pool="slow", now=0.0, lease=1.0)
        store.requeue_expired(now=5.0)
        # The original (slow, not dead) pool reports after the requeue:
        # the queued duplicate must be withdrawn.
        store.report(tid, 0, "{}", now=6.0)
        events = events_for(journal, tid)
        assert events == [EV_ENQUEUE, EV_POP, EV_REQUEUE, EV_WITHDRAW, EV_REPORT]

    def test_duplicate_report_emits_nothing(self, journaled_store):
        store, journal = journaled_store
        (tid,) = store.create_tasks("exp", 0, ["{}"])
        store.pop_out(0, n=1, now=0.0)
        store.report(tid, 0, "{}", now=1.0)
        n_before = len(journal.records(task_id=tid))
        store.report(tid, 0, "{}", now=2.0)  # idempotent no-op
        assert len(journal.records(task_id=tid)) == n_before

    def test_report_batch_emits_per_fresh_item(self, journaled_store):
        store, journal = journaled_store
        ids = store.create_tasks("exp", 0, ["{}"] * 3)
        store.pop_out(0, n=3, now=0.0)
        store.report(ids[0], 0, "{}", now=1.0)  # already complete
        store.report_batch([(tid, 0, "{}") for tid in ids], now=2.0)
        # ids[0] deduped; the other two got exactly one report record.
        assert events_for(journal, ids[0]).count(EV_REPORT) == 1
        for tid in ids[1:]:
            assert events_for(journal, tid) == [EV_ENQUEUE, EV_POP, EV_REPORT]

    def test_cancel_emits(self, journaled_store):
        store, journal = journaled_store
        ids = store.create_tasks("exp", 4, ["{}"] * 2)
        assert store.cancel_tasks(ids) == 2
        for tid in ids:
            events = events_for(journal, tid)
            assert events == [EV_ENQUEUE, EV_CANCEL]
            assert journal.records(task_id=tid)[-1].work_type == 4

    def test_renew_skips_non_running(self, journaled_store):
        store, journal = journaled_store
        (tid,) = store.create_tasks("exp", 0, ["{}"])
        # Never popped: renewal must not record a heartbeat.
        assert store.renew_leases([tid], now=1.0, lease=10.0) == 0
        assert EV_LEASE_RENEW not in events_for(journal, tid)


class TestDisabledJournal:
    @pytest.mark.parametrize("flavor", ["memory", "sqlite"])
    def test_disabled_journal_records_nothing(self, flavor):
        journal = Journal(clock=VirtualClock(), enabled=False)
        if flavor == "memory":
            store = MemoryTaskStore(journal=journal)
        else:
            store = SqliteTaskStore(":memory:", journal=journal)
        try:
            (tid,) = store.create_tasks("exp", 0, ["{}"])
            store.pop_out(0, n=1, now=0.0, lease=5.0)
            store.requeue_expired(now=10.0)
            store.pop_out(0, n=1, now=11.0)
            store.report(tid, 0, "{}", now=12.0)
            assert len(journal) == 0
        finally:
            store.close()

"""Backend conformance suite: every TaskStore behaves identically.

Runs against both the memory and sqlite backends via the parametrized
``store`` fixture in conftest.py.
"""

from __future__ import annotations

import pytest

from repro.db.schema import TaskStatus
from repro.util.errors import NotFoundError


def submit(store, n=1, eq_type=0, priority=0, exp_id="exp", tag=None):
    return store.create_tasks(
        exp_id, eq_type, [f"payload-{i}" for i in range(n)], priority=priority, tag=tag
    )


class TestCreate:
    def test_create_returns_increasing_ids(self, store):
        ids = [store.create_task("e", 0, f"p{i}") for i in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_create_sets_queued_status(self, store):
        tid = store.create_task("e", 0, "p", time_created=42.0)
        row = store.get_task(tid)
        assert row.eq_status == TaskStatus.QUEUED
        assert row.json_out == "p"
        assert row.json_in is None
        assert row.time_created == 42.0
        assert row.time_start is None
        assert row.time_stop is None

    def test_batch_create_matches_single(self, store):
        ids = submit(store, 3)
        assert len(ids) == 3
        for i, tid in enumerate(ids):
            assert store.get_task(tid).json_out == f"payload-{i}"

    def test_batch_create_with_priority_list(self, store):
        ids = store.create_tasks("e", 0, ["a", "b"], priority=[2, 7])
        priorities = dict(store.get_priorities(ids))
        assert priorities == {ids[0]: 2, ids[1]: 7}

    def test_batch_create_priority_length_mismatch(self, store):
        with pytest.raises(ValueError):
            store.create_tasks("e", 0, ["a", "b"], priority=[1])

    def test_create_empty_batch(self, store):
        assert store.create_tasks("e", 0, []) == []


class TestPopOut:
    def test_pop_highest_priority_first(self, store):
        ids = store.create_tasks("e", 0, ["lo", "hi", "mid"], priority=[1, 9, 5])
        popped = store.pop_out(0, 3)
        assert [p for _, p in popped] == ["hi", "mid", "lo"]
        assert [t for t, _ in popped] == [ids[1], ids[2], ids[0]]

    def test_equal_priority_pops_fifo(self, store):
        ids = submit(store, 4)
        popped = store.pop_out(0, 4)
        assert [t for t, _ in popped] == ids

    def test_pop_marks_running_and_stamps(self, store):
        (tid,) = submit(store, 1)
        store.pop_out(0, 1, worker_pool="pool-a", now=7.5)
        row = store.get_task(tid)
        assert row.eq_status == TaskStatus.RUNNING
        assert row.time_start == 7.5
        assert row.worker_pool == "pool-a"

    def test_pop_respects_work_type(self, store):
        store.create_task("e", 1, "type1")
        store.create_task("e", 2, "type2")
        popped = store.pop_out(1, 5)
        assert [p for _, p in popped] == ["type1"]

    def test_pop_empty_queue(self, store):
        assert store.pop_out(0, 1) == []

    def test_pop_more_than_available(self, store):
        submit(store, 2)
        assert len(store.pop_out(0, 10)) == 2

    def test_pop_zero_or_negative(self, store):
        submit(store, 2)
        assert store.pop_out(0, 0) == []
        assert store.pop_out(0, -3) == []

    def test_popped_task_not_popped_again(self, store):
        submit(store, 1)
        assert len(store.pop_out(0, 1)) == 1
        assert store.pop_out(0, 1) == []

    def test_queue_out_length(self, store):
        submit(store, 3, eq_type=0)
        submit(store, 2, eq_type=1)
        assert store.queue_out_length() == 5
        assert store.queue_out_length(0) == 3
        assert store.queue_out_length(1) == 2
        store.pop_out(0, 2)
        assert store.queue_out_length(0) == 1


class TestReportAndPopIn:
    def test_report_sets_complete(self, store):
        (tid,) = submit(store, 1)
        store.pop_out(0, 1)
        store.report(tid, 0, '{"y":1}', now=9.0)
        row = store.get_task(tid)
        assert row.eq_status == TaskStatus.COMPLETE
        assert row.json_in == '{"y":1}'
        assert row.time_stop == 9.0

    def test_report_unknown_task_raises(self, store):
        with pytest.raises(NotFoundError):
            store.report(999, 0, "r")

    def test_pop_in_returns_result_once(self, store):
        (tid,) = submit(store, 1)
        store.pop_out(0, 1)
        store.report(tid, 0, "result")
        assert store.pop_in(tid) == "result"
        assert store.pop_in(tid) is None  # queue row consumed

    def test_pop_in_before_report(self, store):
        (tid,) = submit(store, 1)
        assert store.pop_in(tid) is None

    def test_pop_in_any_batch(self, store):
        ids = submit(store, 4)
        store.pop_out(0, 4)
        store.report(ids[1], 0, "r1")
        store.report(ids[3], 0, "r3")
        popped = store.pop_in_any(ids)
        assert popped == [(ids[1], "r1"), (ids[3], "r3")]
        assert store.pop_in_any(ids) == []

    def test_pop_in_any_empty_input(self, store):
        assert store.pop_in_any([]) == []

    def test_pop_in_any_limit(self, store):
        ids = submit(store, 5)
        store.pop_out(0, 5)
        for tid in ids:
            store.report(tid, 0, f"r{tid}")
        first = store.pop_in_any(ids, limit=2)
        assert [t for t, _ in first] == ids[:2]
        # The rest stay queued for a later pop.
        rest = store.pop_in_any(ids)
        assert [t for t, _ in rest] == ids[2:]

    def test_pop_in_any_limit_zero(self, store):
        ids = submit(store, 1)
        store.pop_out(0, 1)
        store.report(ids[0], 0, "r")
        assert store.pop_in_any(ids, limit=0) == []
        assert store.queue_in_length() == 1

    def test_queue_in_length(self, store):
        ids = submit(store, 3)
        store.pop_out(0, 3)
        for tid in ids:
            store.report(tid, 0, "r")
        assert store.queue_in_length() == 3
        store.pop_in(ids[0])
        assert store.queue_in_length() == 2


class TestReportBatch:
    def test_batch_matches_single_reports(self, store):
        ids = submit(store, 3)
        store.pop_out(0, 3)
        store.report_batch([(tid, 0, f"r{tid}") for tid in ids], now=9.0)
        for tid in ids:
            row = store.get_task(tid)
            assert row.eq_status == TaskStatus.COMPLETE
            assert row.json_in == f"r{tid}"
            assert row.time_stop == 9.0
        assert store.pop_in_any(ids) == [(tid, f"r{tid}") for tid in ids]

    def test_empty_batch_is_noop(self, store):
        store.report_batch([])
        assert store.queue_in_length() == 0

    def test_first_write_wins_within_batch(self, store):
        (tid,) = submit(store, 1)
        store.pop_out(0, 1)
        store.report_batch([(tid, 0, "first"), (tid, 0, "second")])
        assert store.get_task(tid).json_in == "first"
        assert store.queue_in_length() == 1

    def test_already_complete_task_is_skipped(self, store):
        (tid,) = submit(store, 1)
        store.pop_out(0, 1)
        store.report(tid, 0, "original", now=1.0)
        store.report_batch([(tid, 0, "duplicate")], now=2.0)
        row = store.get_task(tid)
        assert row.json_in == "original"
        assert row.time_stop == 1.0
        assert store.queue_in_length() == 1

    def test_missing_ids_raise_after_applying_rest(self, store):
        ids = submit(store, 2)
        store.pop_out(0, 2)
        with pytest.raises(NotFoundError):
            store.report_batch([(ids[0], 0, "r"), (999, 0, "x"), (ids[1], 0, "r")])
        # Present items were applied: report_batch is a performance
        # primitive, per-item idempotent, not an atomic transaction.
        statuses = dict(store.get_statuses(ids))
        assert statuses[ids[0]] == TaskStatus.COMPLETE
        assert statuses[ids[1]] == TaskStatus.COMPLETE

    def test_withdraws_requeued_copy_from_out_queue(self, store):
        (tid,) = submit(store, 1)
        store.pop_out(0, 1)
        store.requeue(tid)  # a second pool could now claim the task
        assert store.queue_out_length(0) == 1
        store.report_batch([(tid, 0, "r")])
        # The report must pull the stale copy so no one re-runs it.
        assert store.queue_out_length(0) == 0
        assert store.pop_out(0, 1) == []


class TestStatusPriorityCancel:
    def test_get_statuses_batch(self, store):
        ids = submit(store, 3)
        store.pop_out(0, 1)
        statuses = dict(store.get_statuses(ids))
        assert statuses[ids[0]] == TaskStatus.RUNNING
        assert statuses[ids[1]] == TaskStatus.QUEUED

    def test_get_statuses_skips_unknown(self, store):
        ids = submit(store, 1)
        statuses = store.get_statuses([ids[0], 999])
        assert len(statuses) == 1

    def test_get_task_unknown_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get_task(12345)

    def test_update_priorities_changes_pop_order(self, store):
        ids = submit(store, 3)  # all priority 0
        store.update_priorities([ids[2]], 10)
        popped = store.pop_out(0, 3)
        assert [t for t, _ in popped] == [ids[2], ids[0], ids[1]]

    def test_update_priorities_returns_changed_count(self, store):
        ids = submit(store, 3)
        store.pop_out(0, 1)  # ids[0] now running
        assert store.update_priorities(ids, 5) == 2

    def test_update_priorities_sequence(self, store):
        ids = submit(store, 3)
        store.update_priorities(ids, [3, 2, 1])
        assert dict(store.get_priorities(ids)) == {
            ids[0]: 3,
            ids[1]: 2,
            ids[2]: 1,
        }

    def test_update_priorities_length_mismatch(self, store):
        ids = submit(store, 2)
        with pytest.raises(ValueError):
            store.update_priorities(ids, [1, 2, 3])

    def test_get_priorities_omits_popped(self, store):
        ids = submit(store, 2)
        store.pop_out(0, 1)
        assert [t for t, _ in store.get_priorities(ids)] == [ids[1]]

    def test_cancel_queued(self, store):
        ids = submit(store, 3)
        assert store.cancel_tasks(ids[:2]) == 2
        statuses = dict(store.get_statuses(ids))
        assert statuses[ids[0]] == TaskStatus.CANCELED
        assert statuses[ids[2]] == TaskStatus.QUEUED
        assert store.queue_out_length(0) == 1

    def test_cancel_running_is_noop(self, store):
        ids = submit(store, 1)
        store.pop_out(0, 1)
        assert store.cancel_tasks(ids) == 0
        assert store.get_statuses(ids)[0][1] == TaskStatus.RUNNING

    def test_canceled_task_never_pops(self, store):
        ids = submit(store, 2)
        store.cancel_tasks([ids[0]])
        popped = store.pop_out(0, 5)
        assert [t for t, _ in popped] == [ids[1]]

    def test_cancel_empty(self, store):
        assert store.cancel_tasks([]) == 0

    def test_reprioritize_then_cancel(self, store):
        # Lazy-invalidation stress: update then cancel must leave no
        # resurrectable heap entry.
        ids = submit(store, 2)
        store.update_priorities([ids[0]], 100)
        store.cancel_tasks([ids[0]])
        popped = store.pop_out(0, 5)
        assert [t for t, _ in popped] == [ids[1]]


class TestExperimentsAndTags:
    def test_tasks_for_experiment(self, store):
        a = store.create_task("exp-a", 0, "p")
        b = store.create_task("exp-b", 0, "p")
        c = store.create_task("exp-a", 0, "p")
        assert store.tasks_for_experiment("exp-a") == [a, c]
        assert store.tasks_for_experiment("exp-b") == [b]
        assert store.tasks_for_experiment("missing") == []

    def test_tasks_for_tag(self, store):
        a = store.create_task("e", 0, "p", tag="round-1")
        store.create_task("e", 0, "p")
        b = store.create_task("e", 0, "p", tag="round-1")
        assert store.tasks_for_tag("round-1") == [a, b]
        assert store.tasks_for_tag("round-2") == []

    def test_tag_recorded_on_row(self, store):
        tid = store.create_task("e", 0, "p", tag="t")
        assert store.get_task(tid).tags == ["t"]


class TestMaintenance:
    def test_max_task_id(self, store):
        assert store.max_task_id() == 0
        ids = submit(store, 3)
        assert store.max_task_id() == ids[-1]

    def test_clear(self, store):
        ids = submit(store, 3)
        store.pop_out(0, 1)
        store.report(ids[0], 0, "r")
        store.clear()
        assert store.max_task_id() == 0
        assert store.queue_out_length() == 0
        assert store.queue_in_length() == 0
        with pytest.raises(NotFoundError):
            store.get_task(ids[0])

    def test_use_after_close_raises(self, store):
        store.close()
        with pytest.raises(RuntimeError):
            store.create_task("e", 0, "p")

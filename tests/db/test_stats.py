"""TaskStore.stats() conformance and lease-machinery counters.

Both backends must report identical queue/lease snapshots for identical
histories — the contract the monitoring samplers and the ``/status``
endpoint depend on.
"""

from __future__ import annotations

from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.telemetry.metrics import MetricsRegistry

EMPTY_STATS = {
    "tasks": {"queued": 0, "running": 0, "complete": 0, "canceled": 0, "total": 0},
    "queue_out": {},
    "queue_out_total": 0,
    "queue_in": 0,
    "leases": {"active": 0, "expired": 0, "unleased_running": 0},
}


class TestStatsConformance:
    def test_empty_store(self, store):
        assert store.stats() == EMPTY_STATS

    def test_counts_by_status_and_type(self, store):
        store.create_tasks("exp", 0, ["{}"] * 3)
        store.create_tasks("exp", 5, ["{}"] * 2)
        popped = store.pop_out(0, n=2, now=1.0)
        store.report(popped[0][0], 0, "{}")
        stats = store.stats(now=1.0)
        assert stats["tasks"] == {
            "queued": 3, "running": 1, "complete": 1, "canceled": 0, "total": 5,
        }
        # Work-type keys are strings: the JSON wire format is the contract.
        assert stats["queue_out"] == {"0": 1, "5": 2}
        assert stats["queue_out_total"] == 3
        assert stats["queue_in"] == 1

    def test_lease_split_active_vs_expired(self, store):
        store.create_tasks("exp", 0, ["{}"] * 3)
        store.pop_out(0, n=1, now=0.0, lease=10.0)   # expires at 10
        store.pop_out(0, n=1, now=0.0, lease=100.0)  # expires at 100
        store.pop_out(0, n=1, now=0.0)               # unleased

        stats = store.stats(now=5.0)
        assert stats["leases"] == {
            "active": 2, "expired": 0, "unleased_running": 1,
        }
        stats = store.stats(now=50.0)
        assert stats["leases"] == {
            "active": 1, "expired": 1, "unleased_running": 1,
        }
        stats = store.stats(now=500.0)
        assert stats["leases"] == {
            "active": 0, "expired": 2, "unleased_running": 1,
        }

    def test_reported_task_leaves_lease_counts(self, store):
        store.create_tasks("exp", 0, ["{}"])
        popped = store.pop_out(0, n=1, now=0.0, lease=10.0)
        store.report(popped[0][0], 0, "{}")
        stats = store.stats(now=5.0)
        assert stats["leases"] == {
            "active": 0, "expired": 0, "unleased_running": 0,
        }
        assert stats["tasks"]["complete"] == 1

    def test_backends_agree(self):
        """The same history yields byte-identical stats on both backends."""

        def drive(store):
            store.create_tasks("exp", 1, ["{}"] * 4)
            store.create_tasks("exp", 2, ["{}"] * 2)
            popped = store.pop_out(1, n=2, now=0.0, lease=20.0)
            store.report(popped[0][0], 1, "{}")
            store.pop_out(2, n=1, now=1.0)
            return store.stats(now=30.0)

        memory, sqlite = MemoryTaskStore(), SqliteTaskStore(":memory:")
        try:
            assert drive(memory) == drive(sqlite)
        finally:
            memory.close()
            sqlite.close()


class TestQueueDepthUnderChurn:
    """Depth gauges must ignore lazily-deleted heap entries (memory
    backend) and agree with sqlite's row counts for the same history."""

    def test_depth_gauges_ignore_dead_entries(self, store):
        ids = store.create_tasks("exp", 0, ["{}"] * 6)
        store.update_priorities(ids, 5)   # memory: invalidates 6 heap entries
        store.cancel_tasks(ids[:2])       # ...and 2 more
        assert store.queue_out_length(0) == 4
        assert store.queue_out_length() == 4
        assert store.stats()["queue_out"] == {"0": 4}
        assert store.stats()["queue_out_total"] == 4

    def test_memory_heap_compacts_under_reprioritization(self):
        """Each update_priorities call strands one dead entry per task;
        compaction must keep the heap near the live count instead of
        letting three full passes quadruple it."""
        store = MemoryTaskStore()
        try:
            ids = store.create_tasks("exp", 0, ["{}"] * 100)
            for priority in range(1, 4):
                assert store.update_priorities(ids, priority) == 100
            # 300 churned entries; without compaction the heap holds ~400.
            assert len(store._out_heaps[0]) < 200
            assert store.queue_out_length(0) == 100
            popped = store.pop_out(0, n=100, now=0.0)
            assert len(popped) == 100
            assert store.queue_out_length(0) == 0
        finally:
            store.close()


class TestLeaseCounters:
    def make(self, kind, registry):
        if kind == "memory":
            return MemoryTaskStore(metrics=registry)
        return SqliteTaskStore(":memory:", metrics=registry)

    def test_renewals_counted(self, store_kind="memory"):
        for kind in ("memory", "sqlite"):
            reg = MetricsRegistry()
            s = self.make(kind, reg)
            s.create_tasks("exp", 0, ["{}"] * 2)
            popped = s.pop_out(0, n=2, now=0.0, lease=10.0)
            ids = [task_id for task_id, _ in popped]
            s.renew_leases(ids, now=1.0, lease=10.0)
            s.renew_leases(ids, now=2.0, lease=10.0)
            assert reg.get("db.lease_renewals").value == 4, kind
            s.close()

    def test_requeues_counted(self):
        for kind in ("memory", "sqlite"):
            reg = MetricsRegistry()
            s = self.make(kind, reg)
            s.create_tasks("exp", 0, ["{}"] * 3)
            s.pop_out(0, n=2, now=0.0, lease=5.0)
            requeued = s.requeue_expired(now=100.0)
            assert len(requeued) == 2, kind
            assert reg.get("db.lease_requeues").value == 2, kind
            s.close()

    def test_report_withdrawal_counted(self):
        """A reaped task whose original report lands late: the requeued
        copy is withdrawn, and the withdrawal is counted."""
        for kind in ("memory", "sqlite"):
            reg = MetricsRegistry()
            s = self.make(kind, reg)
            s.create_tasks("exp", 0, ["{}"])
            popped = s.pop_out(0, n=1, now=0.0, lease=5.0)
            task_id = popped[0][0]
            s.requeue_expired(now=100.0)  # back on the queue
            s.report(task_id, 0, "{}")   # original worker reports anyway
            assert reg.get("db.report_withdrawals").value == 1, kind
            # And the withdrawn copy is really gone.
            assert s.stats()["queue_out_total"] == 0, kind
            s.close()

    def test_plain_report_not_counted_as_withdrawal(self):
        for kind in ("memory", "sqlite"):
            reg = MetricsRegistry()
            s = self.make(kind, reg)
            s.create_tasks("exp", 0, ["{}"])
            popped = s.pop_out(0, n=1, now=0.0)
            s.report(popped[0][0], 0, "{}")
            assert reg.get("db.report_withdrawals").value == 0, kind
            s.close()

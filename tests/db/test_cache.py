"""Cross-backend result-cache parity (ISSUE 10 satellite).

One parametrized module holds every backend to the same cache
contract — memory, sqlite, and remote through a live TaskService —
covering hit/miss, TTL expiry-on-get, last-write-wins puts, LRU
eviction at capacity, stats, and persistence across sqlite reopen.
The EQSQL-level tests then cover the submit-path integration: cache
modes, already-completed futures on hit, single-flight coalescing
(including the lease-expiry/requeue interleaving), and report-time
population through both the single and batch report paths.
"""

from __future__ import annotations

import pytest

from repro.core.constants import ResultStatus, TaskStatus
from repro.core.eqsql import EQSQL
from repro.core.futures import as_completed
from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.telemetry.metrics import MetricsRegistry
from repro.util.clock import VirtualClock
from repro.util.serialization import cache_key

CAPACITY = 4


@pytest.fixture(params=["memory", "sqlite", "remote"])
def cache_store(request):
    """A fresh capacity-bounded store of each access-path flavor."""
    registry = MetricsRegistry()
    if request.param == "memory":
        store = MemoryTaskStore(metrics=registry, cache_capacity=CAPACITY)
        yield store
        store.close()
    elif request.param == "sqlite":
        store = SqliteTaskStore(
            ":memory:", metrics=registry, cache_capacity=CAPACITY
        )
        yield store
        store.close()
    else:
        from repro.core.service import TaskService
        from repro.core.service_client import RemoteTaskStore

        backend = MemoryTaskStore(metrics=registry, cache_capacity=CAPACITY)
        service = TaskService(backend, port=0, metrics=registry).start()
        host, port = service.address
        client = RemoteTaskStore(host, port, metrics=MetricsRegistry())
        yield client
        client.close()
        service.stop()
        backend.close()


class TestCacheParity:
    def test_miss_then_hit(self, cache_store):
        assert cache_store.cache_get("k", now=1.0) is None
        cache_store.cache_put("k", 0, '{"r": 1}', now=1.0)
        assert cache_store.cache_get("k", now=2.0) == '{"r": 1}'
        stats = cache_store.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["inserts"] == 1
        assert stats["entries"] == 1
        assert stats["capacity"] == CAPACITY

    def test_put_is_last_write_wins(self, cache_store):
        cache_store.cache_put("k", 0, "old", now=1.0)
        cache_store.cache_put("k", 0, "new", now=2.0)
        assert cache_store.cache_get("k", now=3.0) == "new"
        assert cache_store.cache_stats()["entries"] == 1

    def test_ttl_expiry_on_get_counts_a_miss(self, cache_store):
        cache_store.cache_put("k", 0, "r", now=0.0, ttl=10.0)
        assert cache_store.cache_get("k", now=9.0) == "r"
        assert cache_store.cache_get("k", now=10.0) is None  # expiry <= now
        stats = cache_store.cache_stats()
        assert stats["misses"] == 1
        assert stats["entries"] == 0

    def test_no_ttl_never_expires(self, cache_store):
        cache_store.cache_put("k", 0, "r", now=0.0)
        assert cache_store.cache_get("k", now=1e9) == "r"

    def test_overwrite_refreshes_ttl(self, cache_store):
        cache_store.cache_put("k", 0, "r1", now=0.0, ttl=5.0)
        cache_store.cache_put("k", 0, "r2", now=4.0, ttl=5.0)
        assert cache_store.cache_get("k", now=6.0) == "r2"

    def test_lru_eviction_at_capacity(self, cache_store):
        for i in range(CAPACITY):
            cache_store.cache_put(f"k{i}", 0, f"r{i}", now=float(i))
        # Touch k0 so k1 becomes the least-recently-used entry.
        assert cache_store.cache_get("k0", now=10.0) == "r0"
        cache_store.cache_put("overflow", 0, "r", now=11.0)
        stats = cache_store.cache_stats()
        assert stats["entries"] == CAPACITY
        assert stats["evictions"] == 1
        assert cache_store.cache_get("k1", now=12.0) is None  # evicted
        assert cache_store.cache_get("k0", now=12.0) == "r0"  # survived

    def test_eviction_order_is_use_order_not_insert_order(self, cache_store):
        for i in range(CAPACITY):
            cache_store.cache_put(f"k{i}", 0, "r", now=0.0)
        for i in range(CAPACITY - 1, -1, -1):  # reverse-touch
            cache_store.cache_get(f"k{i}", now=1.0)
        cache_store.cache_put("new", 0, "r", now=2.0)
        # k3 was touched first in the reverse pass, so it is the LRU.
        assert cache_store.cache_get(f"k{CAPACITY - 1}", now=3.0) is None
        assert cache_store.cache_get("k0", now=3.0) == "r"

    def test_clear_empties_the_cache(self, cache_store):
        cache_store.cache_put("k", 0, "r", now=0.0)
        cache_store.clear()
        assert cache_store.cache_stats()["entries"] == 0
        assert cache_store.cache_get("k", now=1.0) is None


class TestSqlitePersistence:
    def test_cache_survives_reopen_including_lru_counter(self, tmp_path):
        path = str(tmp_path / "cache.db")
        store = SqliteTaskStore(
            path, metrics=MetricsRegistry(), cache_capacity=CAPACITY
        )
        for i in range(CAPACITY):
            store.cache_put(f"k{i}", 0, f"r{i}", now=float(i))
        store.cache_get("k0", now=10.0)  # k0 most recently used
        store.close()

        store = SqliteTaskStore(
            path, metrics=MetricsRegistry(), cache_capacity=CAPACITY
        )
        assert store.cache_get("k2", now=11.0) == "r2"
        # The resumed use counter keeps LRU order coherent: the next
        # overflow evicts k1 (never touched), not k0 or k2.
        store.cache_put("new", 0, "r", now=12.0)
        assert store.cache_get("k1", now=13.0) is None
        assert store.cache_get("k0", now=13.0) == "r0"
        store.close()

    def test_old_file_without_cache_table_migrates(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "old.db")
        # A pre-cache schema: the migration replays the DDL on open, so
        # simply dropping the table simulates an old database file.
        store = SqliteTaskStore(path, metrics=MetricsRegistry())
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE eq_task_cache")
        conn.commit()
        conn.close()
        store = SqliteTaskStore(path, metrics=MetricsRegistry())
        store.cache_put("k", 0, "r", now=0.0)
        assert store.cache_get("k", now=1.0) == "r"
        store.close()


class TestSubmitPathCache:
    def _eqsql(self, ttl=None):
        registry = MetricsRegistry()
        store = MemoryTaskStore(metrics=registry, cache_capacity=16)
        clock = VirtualClock()
        return (
            EQSQL(store, clock=clock, metrics=registry, cache_ttl=ttl),
            store,
            clock,
            registry,
        )

    def _run_one(self, eq, store, result='{"out": 1}'):
        """Pop the single queued task and report ``result`` for it."""
        popped = store.pop_out(0, 1, worker_pool="w", now=eq.clock.now())
        assert len(popped) == 1
        eq.report_task(popped[0][0], 0, result)
        return popped[0][0]

    def test_invalid_mode_rejected(self):
        eq, store, _clock, _reg = self._eqsql()
        with pytest.raises(ValueError):
            eq.submit_task("e", 0, "{}", cache="write")
        eq.close()

    def test_off_mode_never_consults_the_cache(self):
        eq, store, _clock, _reg = self._eqsql()
        store.cache_put(cache_key(0, '{"x": 1}'), 0, "cached", now=0.0)
        future = eq.submit_task("e", 0, '{"x": 1}')
        assert future._result is None
        assert store.cache_stats()["hits"] == 0
        eq.close()

    def test_hit_returns_completed_future_without_a_task(self):
        eq, store, _clock, _reg = self._eqsql()
        store.cache_put(cache_key(0, '{"x": 1}'), 0, "cached", now=0.0)
        future = eq.submit_task("e", 0, '{"x": 1}', cache="read")
        assert future.done()
        assert future.status == TaskStatus.COMPLETE
        assert future.result(timeout=0) == (ResultStatus.SUCCESS, "cached")
        assert future.eq_task_id < 0  # synthetic id, no store row
        assert store.queue_out_length(0) == 0
        eq.close()

    def test_hit_is_invariant_to_payload_key_order(self):
        eq, store, _clock, _reg = self._eqsql()
        store.cache_put(cache_key(0, '{"a": 1, "b": 2}'), 0, "cached", now=0.0)
        future = eq.submit_task("e", 0, '{"b": 2, "a": 1}', cache="read")
        assert future._result == "cached"
        eq.close()

    def test_readwrite_populates_on_report(self):
        eq, store, _clock, _reg = self._eqsql()
        future = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        self._run_one(eq, store)
        # Populated at report time, before any retrieval.
        assert store.cache_stats()["inserts"] == 1
        assert future.result(timeout=0) == (ResultStatus.SUCCESS, '{"out": 1}')
        # A later identical submission is a pure cache hit.
        hit = eq.submit_task("e", 0, '{"x": 1}', cache="read")
        assert hit._result == '{"out": 1}'
        assert store.queue_out_length(0) == 0
        eq.close()

    def test_read_mode_does_not_populate(self):
        eq, store, _clock, _reg = self._eqsql()
        future = eq.submit_task("e", 0, '{"x": 1}', cache="read")
        self._run_one(eq, store)
        assert future.result(timeout=0)[0] == ResultStatus.SUCCESS
        assert store.cache_stats()["inserts"] == 0
        eq.close()

    def test_populates_through_batch_report_path(self):
        eq, store, _clock, _reg = self._eqsql()
        f1 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        f2 = eq.submit_task("e", 0, '{"x": 2}', cache="readwrite")
        popped = store.pop_out(0, 2, worker_pool="w", now=0.0)
        eq.report_tasks([(tid, 0, f'{{"res": {tid}}}') for tid, _ in popped])
        assert store.cache_stats()["inserts"] == 2
        assert f1.result(timeout=0)[0] == ResultStatus.SUCCESS
        assert f2.result(timeout=0)[0] == ResultStatus.SUCCESS
        eq.close()

    def test_inflight_duplicate_coalesces(self):
        eq, store, _clock, registry = self._eqsql()
        f1 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        f2 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        assert f2.eq_task_id == f1.eq_task_id
        assert registry.counter("cache.coalesce").value == 1
        assert store.queue_out_length(0) == 1  # single task row
        self._run_one(eq, store)
        # One popped result resolves both futures; queues fully drain.
        done = list(as_completed([f1, f2], timeout=0))
        assert len(done) == 2
        assert f1._result == f2._result == '{"out": 1}'
        assert eq.are_queues_empty()
        eq.close()

    def test_batch_dedups_within_and_against_inflight(self):
        eq, store, _clock, registry = self._eqsql()
        leader = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        futures = eq.submit_tasks(
            "e", 0, ['{"x": 1}', '{"x": 2}', '{"x": 2}'], cache="readwrite"
        )
        assert futures[0].eq_task_id == leader.eq_task_id  # vs in-flight
        assert futures[1].eq_task_id == futures[2].eq_task_id  # in-batch
        assert store.queue_out_length(0) == 2  # x=1 and x=2 only
        assert registry.counter("cache.coalesce").value == 2
        eq.close()

    def test_coalesced_task_survives_lease_expiry_requeue(self):
        """The ISSUE's adversarial interleaving: the original lease of a
        coalesced task expires, the reaper requeues it, a second pool
        executes it, and the late first report is a no-op — both
        futures still resolve exactly once, with the first-written
        result, and the cache holds that same result."""
        eq, store, clock, _reg = self._eqsql()
        f1 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        f2 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        tid = f1.eq_task_id

        # Pool A claims under a lease, then stalls past expiry.
        popped = store.pop_out(0, 1, worker_pool="A", now=0.0, lease=5.0)
        assert popped[0][0] == tid
        clock.advance(10.0)
        assert store.requeue_expired(now=clock.now()) == [tid]

        # Pool B re-pops and reports first: its result wins.
        popped = store.pop_out(0, 1, worker_pool="B", now=clock.now(), lease=5.0)
        assert popped[0][0] == tid
        eq.report_task(tid, 0, '{"by": "B"}')
        # Pool A's late report is absorbed (first-write-wins).
        eq.report_task(tid, 0, '{"by": "A"}')

        done = list(as_completed([f1, f2], timeout=0))
        assert len(done) == 2
        assert f1._result == f2._result == '{"by": "B"}'
        assert eq.are_queues_empty()
        # The cache holds the winning result only.
        stats = store.cache_stats()
        assert stats["inserts"] == 1
        hit = eq.submit_task("e", 0, '{"x": 1}', cache="read")
        assert hit._result == '{"by": "B"}'
        eq.close()

    def test_cancel_drops_the_flight(self):
        eq, store, _clock, _reg = self._eqsql()
        f1 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        assert eq.cancel_tasks([f1.eq_task_id]) == 1
        # A fresh identical submission must not coalesce onto the
        # canceled task — it gets a new row.
        f2 = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        assert f2.eq_task_id != f1.eq_task_id
        self._run_one(eq, store)
        assert f2.result(timeout=0)[0] == ResultStatus.SUCCESS
        eq.close()

    def test_ttl_flows_from_eqsql_config(self):
        eq, store, clock, _reg = self._eqsql(ttl=10.0)
        future = eq.submit_task("e", 0, '{"x": 1}', cache="readwrite")
        self._run_one(eq, store)
        assert future.result(timeout=0)[0] == ResultStatus.SUCCESS
        clock.advance(5.0)
        assert eq.submit_task("e", 0, '{"x": 1}', cache="read")._result is not None
        clock.advance(6.0)  # past the 10 s TTL
        stale = eq.submit_task("e", 0, '{"x": 1}', cache="read")
        assert stale._result is None  # miss: a real task was created
        assert stale.eq_task_id > 0
        eq.close()


class TestRemoteSubmitPathCache:
    def test_pop_time_population_when_reporter_is_remote(self):
        """Distributed topology: the reporting process is not the
        submitting process, so report-time population cannot see the
        flight — the submit side populates when the result lands."""
        from repro.core.service import TaskService
        from repro.core.service_client import RemoteTaskStore

        registry = MetricsRegistry()
        backend = MemoryTaskStore(metrics=registry, cache_capacity=16)
        service = TaskService(backend, port=0, metrics=registry).start()
        host, port = service.address
        me_client = RemoteTaskStore(host, port, metrics=MetricsRegistry())
        pool_client = RemoteTaskStore(host, port, metrics=MetricsRegistry())
        me = EQSQL(me_client, metrics=MetricsRegistry())
        try:
            future = me.submit_task("e", 0, '{"x": 1}', cache="readwrite")
            popped = pool_client.pop_out(0, 1, worker_pool="w", now=0.0)
            # The pool-side report: a different store handle entirely.
            pool_client.report(popped[0][0], 0, '{"res": 7}', now=1.0)
            assert future.result(timeout=5.0) == (
                ResultStatus.SUCCESS, '{"res": 7}'
            )
            assert backend.cache_stats()["inserts"] == 1
            hit = me.submit_task("e", 0, '{"x": 1}', cache="read")
            assert hit._result == '{"res": 7}'
        finally:
            me.close()
            pool_client.close()
            service.stop()
            backend.close()

"""Tests for the broker/endpoint/client stack."""

from __future__ import annotations

import time

import pytest

from repro.fabric import (
    AuthServer,
    CloudBroker,
    Endpoint,
    FabricClient,
    FabricTaskState,
    LocalProvider,
    RemoteExecutionError,
)
from repro.fabric.auth import SCOPE_COMPUTE, SCOPE_ENDPOINT
from repro.util.errors import (
    AuthenticationError,
    NotFoundError,
    PayloadTooLargeError,
    TimeoutError_,
)


def double(x):
    return 2 * x


def power(base, exp=2):
    return base**exp


def fail_loudly():
    raise ValueError("remote boom")


@pytest.fixture
def stack():
    """Broker + one running endpoint + client, with real auth."""
    auth = AuthServer()
    auth.register_client("user", "pw", {SCOPE_COMPUTE})
    auth.register_client("site", "pw", {SCOPE_ENDPOINT})
    broker = CloudBroker(auth=auth)
    ep_token = auth.issue_token("site", "pw")
    endpoint = Endpoint(broker, "bebop", ep_token, provider=LocalProvider(2)).start()
    client = FabricClient(broker, auth.issue_token("user", "pw"))
    yield broker, endpoint, client
    endpoint.stop()


class TestExecution:
    def test_submit_and_result(self, stack):
        _, endpoint, client = stack
        future = client.submit(double, 21, endpoint=endpoint.endpoint_id)
        assert future.result(timeout=10) == 42
        # Cached after retrieval (broker storage freed).
        assert future.result(timeout=0) == 42
        assert future.state() == FabricTaskState.SUCCESS

    def test_kwargs(self, stack):
        _, endpoint, client = stack
        assert client.run(power, 3, exp=3, endpoint=endpoint.endpoint_id, timeout=10) == 27

    def test_map_preserves_order(self, stack):
        _, endpoint, client = stack
        results = client.map(double, [1, 2, 3, 4], endpoint=endpoint.endpoint_id, timeout=10)
        assert results == [2, 4, 6, 8]

    def test_remote_failure_raises_with_traceback(self, stack):
        _, endpoint, client = stack
        future = client.submit(fail_loudly, endpoint=endpoint.endpoint_id)
        with pytest.raises(RemoteExecutionError, match="remote boom"):
            future.result(timeout=10)
        assert future.state() == FabricTaskState.FAILED

    def test_endpoint_status(self, stack):
        _, endpoint, client = stack
        status = client.endpoint_status(endpoint.endpoint_id)
        assert status["name"] == "bebop"
        assert status["online"] is True

    def test_unknown_endpoint(self, stack):
        _, _, client = stack
        with pytest.raises(NotFoundError):
            client.submit(double, 1, endpoint="ep-nonexistent")


class TestFireAndForget:
    def test_submit_while_offline_runs_after_start(self):
        broker = CloudBroker()
        endpoint = Endpoint(broker, "late-site", "tok")
        client = FabricClient(broker, "tok")
        # Endpoint registered but not started: task queues at broker.
        future = client.submit(double, 5, endpoint=endpoint.endpoint_id)
        time.sleep(0.05)
        assert future.state() == FabricTaskState.PENDING
        endpoint.start()
        try:
            assert future.result(timeout=10) == 10
        finally:
            endpoint.stop()

    def test_restart_redelivers_leased_tasks(self):
        broker = CloudBroker()
        client = FabricClient(broker, "tok")

        # An endpoint that dies before reporting: we simulate by leasing
        # manually and taking the endpoint offline.
        endpoint_id = broker.register_endpoint("tok", "flaky")
        broker.endpoint_online("tok", endpoint_id)
        future = client.submit(double, 4, endpoint=endpoint_id)
        leased = broker.fetch_tasks("tok", endpoint_id, max_tasks=1)
        assert len(leased) == 1
        broker.endpoint_offline("tok", endpoint_id)  # crash: task requeued
        assert future.state() == FabricTaskState.PENDING

        # A restarted endpoint process re-attaches to the same identity.
        endpoint = Endpoint(broker, "flaky", "tok", endpoint_id=endpoint_id)
        endpoint.start()
        try:
            assert future.result(timeout=10) == 8
        finally:
            endpoint.stop()

    def test_retry_budget_exhausts_to_failure(self):
        broker = CloudBroker(max_attempts=2)
        client = FabricClient(broker, "tok")
        endpoint_id = broker.register_endpoint("tok", "crashy")
        future = client.submit(double, 1, endpoint=endpoint_id)
        for _ in range(2):
            broker.endpoint_online("tok", endpoint_id)
            assert broker.fetch_tasks("tok", endpoint_id, max_tasks=1)
            broker.endpoint_offline("tok", endpoint_id)
        assert future.state() == FabricTaskState.FAILED
        with pytest.raises(RemoteExecutionError, match="gave up after 2 attempts"):
            future.result(timeout=1)


class TestPayloadLimit:
    def test_oversized_input_rejected_at_submit(self):
        broker = CloudBroker(payload_limit=1024)
        client = FabricClient(broker, "tok")
        endpoint_id = broker.register_endpoint("tok", "site")
        big = bytes(2048)
        with pytest.raises(PayloadTooLargeError):
            client.submit(double, big, endpoint=endpoint_id)

    def test_oversized_result_fails_task(self):
        broker = CloudBroker(payload_limit=4096)
        client = FabricClient(broker, "tok")
        endpoint = Endpoint(broker, "site", "tok").start()
        try:
            future = client.submit(bytes, 100_000, endpoint=endpoint.endpoint_id)
            with pytest.raises(RemoteExecutionError, match="PayloadTooLarge"):
                future.result(timeout=10)
        finally:
            endpoint.stop()


class TestSecurity:
    def test_client_scope_cannot_register_endpoints(self):
        auth = AuthServer()
        auth.register_client("user", "pw", {SCOPE_COMPUTE})
        broker = CloudBroker(auth=auth)
        token = auth.issue_token("user", "pw")
        with pytest.raises(Exception) as info:
            broker.register_endpoint(token.value, "rogue")
        assert isinstance(info.value, AuthenticationError)

    def test_bogus_token_rejected(self):
        auth = AuthServer()
        broker = CloudBroker(auth=auth)
        with pytest.raises(AuthenticationError):
            broker.list_endpoints("bogus")


class TestTimeouts:
    def test_result_timeout(self):
        broker = CloudBroker()
        client = FabricClient(broker, "tok")
        endpoint_id = broker.register_endpoint("tok", "never-online")
        future = client.submit(double, 1, endpoint=endpoint_id)
        with pytest.raises(TimeoutError_):
            future.result(timeout=0.05)

"""Tests for endpoint execution providers."""

from __future__ import annotations

import threading
import time

import pytest

from repro.fabric import CloudBroker, Endpoint, FabricClient, LocalProvider, SchedulerProvider
from repro.sched import Cluster, ClusterSpec, Scheduler
from repro.util.errors import InvalidStateError


def add_one(x):
    return x + 1


class TestLocalProvider:
    def test_bounded_concurrency(self):
        provider = LocalProvider(max_workers=2)
        active = []
        peak = []
        lock = threading.Lock()
        done = threading.Event()
        count = [0]

        def body():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.02)
            with lock:
                active.pop()
                count[0] += 1
                if count[0] == 6:
                    done.set()

        for _ in range(6):
            provider.submit(body)
        assert done.wait(10)
        assert max(peak) <= 2
        provider.shutdown()

    def test_submit_after_shutdown_rejected(self):
        provider = LocalProvider(1)
        provider.shutdown()
        with pytest.raises(InvalidStateError):
            provider.submit(lambda: None)

    def test_double_shutdown_ok(self):
        provider = LocalProvider(1)
        provider.shutdown()
        provider.shutdown()

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            LocalProvider(0)


class TestSchedulerProvider:
    @pytest.fixture
    def scheduler(self):
        sched = Scheduler(Cluster(ClusterSpec("c", n_nodes=2)), tick=0.005).start()
        yield sched
        sched.shutdown()

    def test_tasks_run_as_pilot_jobs(self, scheduler):
        provider = SchedulerProvider(scheduler, walltime=30)
        results = []
        lock = threading.Lock()
        done = threading.Event()

        def body():
            with lock:
                results.append(1)
                if len(results) == 3:
                    done.set()

        for _ in range(3):
            provider.submit(body)
        assert done.wait(10)
        provider.shutdown(wait=True)

    def test_node_contention_queues_tasks(self, scheduler):
        """More tasks than nodes: they serialize through the scheduler."""
        provider = SchedulerProvider(scheduler, nodes_per_task=2, walltime=30)
        order = []
        lock = threading.Lock()
        done = threading.Event()

        def body(k):
            with lock:
                order.append(k)
                if len(order) == 3:
                    done.set()
            time.sleep(0.03)

        for k in range(3):
            provider.submit(lambda k=k: body(k))
        assert done.wait(15)
        assert order == [0, 1, 2]  # whole-cluster jobs run FIFO
        provider.shutdown(wait=True)

    def test_submit_after_shutdown_rejected(self, scheduler):
        provider = SchedulerProvider(scheduler)
        provider.shutdown()
        with pytest.raises(InvalidStateError):
            provider.submit(lambda: None)

    def test_endpoint_on_scheduler_provider_end_to_end(self, scheduler):
        broker = CloudBroker()
        endpoint = Endpoint(
            broker, "cluster-site", "tok",
            provider=SchedulerProvider(scheduler, walltime=30),
        ).start()
        client = FabricClient(broker, "tok")
        try:
            assert client.run(add_one, 41, endpoint=endpoint.endpoint_id, timeout=30) == 42
        finally:
            endpoint.stop()

"""Tests for the OAuth2-style auth server."""

from __future__ import annotations

import pytest

from repro.fabric import AuthServer, NullAuthServer
from repro.fabric.auth import SCOPE_COMPUTE, SCOPE_ENDPOINT
from repro.util.clock import VirtualClock
from repro.util.errors import AuthenticationError
from repro.util.errors import AuthorizationError


@pytest.fixture
def auth():
    server = AuthServer()
    server.register_client("alice", "s3cret", {SCOPE_COMPUTE, SCOPE_ENDPOINT})
    return server


class TestTokenIssue:
    def test_issue_and_validate(self, auth):
        token = auth.issue_token("alice", "s3cret")
        validated = auth.validate(token.value, SCOPE_COMPUTE)
        assert validated.client_id == "alice"

    def test_scoped_token(self, auth):
        token = auth.issue_token("alice", "s3cret", scopes={SCOPE_COMPUTE})
        auth.validate(token.value, SCOPE_COMPUTE)
        with pytest.raises(AuthorizationError):
            auth.validate(token.value, SCOPE_ENDPOINT)

    def test_unknown_client(self, auth):
        with pytest.raises(AuthenticationError):
            auth.issue_token("mallory", "pw")

    def test_wrong_secret(self, auth):
        with pytest.raises(AuthenticationError):
            auth.issue_token("alice", "wrong")

    def test_scope_escalation_rejected(self, auth):
        auth.register_client("bob", "pw", {SCOPE_COMPUTE})
        with pytest.raises(AuthorizationError):
            auth.issue_token("bob", "pw", scopes={SCOPE_ENDPOINT})

    def test_duplicate_registration(self, auth):
        with pytest.raises(ValueError):
            auth.register_client("alice", "x", set())


class TestTokenLifecycle:
    def test_expiry(self):
        clock = VirtualClock()
        server = AuthServer(clock=clock, token_lifetime=100.0)
        server.register_client("a", "pw", {SCOPE_COMPUTE})
        token = server.issue_token("a", "pw")
        server.validate(token.value, SCOPE_COMPUTE)
        clock.advance(101)
        with pytest.raises(AuthenticationError, match="expired"):
            server.validate(token.value, SCOPE_COMPUTE)

    def test_revocation(self, auth):
        token = auth.issue_token("alice", "s3cret")
        assert auth.revoke(token.value)
        with pytest.raises(AuthenticationError):
            auth.validate(token.value, SCOPE_COMPUTE)
        assert not auth.revoke(token.value)

    def test_unknown_token(self, auth):
        with pytest.raises(AuthenticationError):
            auth.validate("bogus", SCOPE_COMPUTE)

    def test_tokens_are_opaque_and_unique(self, auth):
        a = auth.issue_token("alice", "s3cret")
        b = auth.issue_token("alice", "s3cret")
        assert a.value != b.value
        assert "s3cret" not in a.value


def test_null_auth_accepts_everything():
    server = NullAuthServer()
    token = server.validate("anything", SCOPE_COMPUTE)
    assert token.has_scope(SCOPE_COMPUTE)

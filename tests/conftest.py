"""Shared fixtures: both EMEWS DB backends behind one parametrized fixture."""

from __future__ import annotations

import pytest

from repro.db import MemoryTaskStore, SqliteTaskStore


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    """A fresh TaskStore of each backend flavor."""
    if request.param == "memory":
        s = MemoryTaskStore()
    else:
        s = SqliteTaskStore(":memory:")
    yield s
    s.close()


@pytest.fixture(params=["memory", "sqlite-file"])
def durable_store(request, tmp_path):
    """A store whose sqlite flavor is file-backed (for reattach tests)."""
    if request.param == "memory":
        s = MemoryTaskStore()
    else:
        s = SqliteTaskStore(str(tmp_path / "emews.db"))
    yield s
    s.close()

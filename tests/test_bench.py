"""Benchmark-regression harness: schema, comparison logic, smoke runs."""

from __future__ import annotations

import io
import json

import pytest

from repro.bench import (
    BENCHES,
    SCHEMA_VERSION,
    compare_result,
    environment_fingerprint,
    make_result,
    metric_direction,
    run_harness,
    validate_result,
    write_results,
)


class TestSchema:
    def test_make_result_validates(self):
        result = make_result("x", {"tasks_per_s": 10.0}, smoke=True, params={})
        assert validate_result(result) == []
        assert result["schema_version"] == SCHEMA_VERSION

    def test_env_fingerprint_fields(self):
        env = environment_fingerprint()
        assert set(env) >= {"python", "platform", "machine", "cpu_count"}
        assert env["cpu_count"] >= 1

    def test_missing_key_detected(self):
        result = make_result("x", {"m_per_s": 1.0}, True, {})
        del result["env"]
        assert any("env" in e for e in validate_result(result))

    def test_wrong_schema_version_detected(self):
        result = make_result("x", {"m_per_s": 1.0}, True, {})
        result["schema_version"] = 999
        assert validate_result(result)

    def test_non_numeric_metric_detected(self):
        result = make_result("x", {"m_per_s": 1.0}, True, {})
        result["metrics"]["bad"] = "fast"
        assert any("bad" in e for e in validate_result(result))

    def test_empty_metrics_detected(self):
        result = make_result("x", {}, True, {})
        assert validate_result(result)

    def test_non_dict_rejected(self):
        assert validate_result([1, 2]) != []


class TestComparison:
    def base(self, **metrics):
        return make_result("b", metrics, False, {})

    def test_direction_convention(self):
        assert metric_direction("tasks_per_s") == 1
        assert metric_direction("rtt_seconds") == -1
        assert metric_direction("dip_depth") == 0

    def test_throughput_regression_fails(self):
        baseline = self.base(tasks_per_s=100.0)
        current = self.base(tasks_per_s=40.0)  # -60% < -50% tolerance
        problems = compare_result(current, baseline, tolerance=0.5)
        assert len(problems) == 1
        assert "tasks_per_s" in problems[0]

    def test_within_tolerance_passes(self):
        baseline = self.base(tasks_per_s=100.0)
        current = self.base(tasks_per_s=60.0)  # -40% within 50%
        assert compare_result(current, baseline, tolerance=0.5) == []

    def test_improvement_never_fails(self):
        baseline = self.base(tasks_per_s=100.0, rtt_seconds=0.01)
        current = self.base(tasks_per_s=1000.0, rtt_seconds=0.0001)
        assert compare_result(current, baseline, tolerance=0.1) == []

    def test_latency_regression_fails(self):
        baseline = self.base(rtt_seconds=0.01)
        current = self.base(rtt_seconds=0.1)  # 10x slower
        assert compare_result(current, baseline, tolerance=0.5)

    def test_unknown_direction_ignored(self):
        baseline = self.base(some_count=100.0)
        current = self.base(some_count=1.0)
        assert compare_result(current, baseline, tolerance=0.1) == []

    def test_metric_missing_from_baseline_ignored(self):
        baseline = self.base(tasks_per_s=10.0)
        current = self.base(tasks_per_s=10.0, new_per_s=5.0)
        assert compare_result(current, baseline, tolerance=0.5) == []


class TestWriteResults:
    def test_one_file_per_bench(self, tmp_path):
        results = [
            make_result("alpha", {"a_per_s": 1.0}, True, {}),
            make_result("beta", {"b_per_s": 2.0}, True, {}),
        ]
        paths = write_results(results, tmp_path)
        assert [p.name for p in paths] == ["BENCH_alpha.json", "BENCH_beta.json"]
        loaded = json.loads(paths[0].read_text())
        assert validate_result(loaded) == []


class TestHarness:
    def test_unknown_bench_exits_2(self, tmp_path):
        out = io.StringIO()
        rc = run_harness(names=["nonsense"], out_dir=tmp_path, out=out)
        assert rc == 2
        assert "unknown" in out.getvalue()

    def test_smoke_run_produces_valid_results(self, tmp_path):
        out = io.StringIO()
        rc = run_harness(
            names=["db_throughput"], smoke=True, out_dir=tmp_path, out=out
        )
        assert rc == 0
        path = tmp_path / "BENCH_db_throughput.json"
        result = json.loads(path.read_text())
        assert validate_result(result) == []
        assert result["smoke"] is True
        assert result["metrics"]["memory_create_per_s"] > 0

    def test_doctored_baseline_exits_1(self, tmp_path):
        """An impossible baseline (1e12 tasks/s) must fail the harness."""
        baseline = {
            "db_throughput": make_result(
                "db_throughput", {"memory_create_per_s": 1e12}, False, {}
            )
        }
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        out = io.StringIO()
        rc = run_harness(
            names=["db_throughput"], smoke=True, out_dir=tmp_path,
            baseline_path=baseline_path, tolerance=0.5, out=out,
        )
        assert rc == 1
        assert "REGRESSIONS" in out.getvalue()

    def test_honest_baseline_passes(self, tmp_path):
        out = io.StringIO()
        rc = run_harness(
            names=["db_throughput"], smoke=True, out_dir=tmp_path, out=out
        )
        assert rc == 0
        result = json.loads((tmp_path / "BENCH_db_throughput.json").read_text())
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"db_throughput": result}))
        rc = run_harness(
            names=["db_throughput"], smoke=True, out_dir=tmp_path,
            baseline_path=baseline_path, tolerance=0.99, out=io.StringIO(),
        )
        assert rc == 0

    def test_invalid_baseline_exits_2(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"db_throughput": {"nope": 1}}))
        rc = run_harness(
            names=["db_throughput"], smoke=True, out_dir=tmp_path,
            baseline_path=baseline_path, out=io.StringIO(),
        )
        assert rc == 2

    def test_committed_baseline_is_schema_valid(self):
        """The baseline checked into the repo must itself pass the schema."""
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"
        )
        baseline = json.loads(baseline_path.read_text())
        assert set(baseline) == set(BENCHES)
        for name, result in baseline.items():
            assert validate_result(result) == [], name
            assert result["name"] == name


@pytest.mark.slow
class TestAllBenchesSmoke:
    def test_every_bench_runs_in_smoke_mode(self, tmp_path):
        rc = run_harness(smoke=True, out_dir=tmp_path, out=io.StringIO())
        assert rc == 0
        written = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
        assert written == sorted(f"BENCH_{n}.json" for n in BENCHES)

"""Tests for the EQSQL task API (paper Listing 1 semantics)."""

from __future__ import annotations

import json

import pytest

from repro.core import EQSQL, ResultStatus, TaskStatus, init_eqsql
from repro.core.eqsql import TIMEOUT_MESSAGE
from repro.util.clock import VirtualClock


@pytest.fixture
def eq(store):
    eqsql = EQSQL(store)
    yield eqsql


class TestSubmit:
    def test_submit_returns_future(self, eq):
        future = eq.submit_task("exp1", 0, '{"x": 1}')
        assert future.eq_task_id == 1
        assert future.eq_type == 0
        assert future.exp_id == "exp1"
        assert future.status == TaskStatus.QUEUED

    def test_submit_records_creation_time(self, store):
        clock = VirtualClock(100.0)
        eq = EQSQL(store, clock=clock)
        future = eq.submit_task("e", 0, "p")
        assert eq.task_info(future.eq_task_id).time_created == 100.0

    def test_submit_tasks_batch(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        assert [f.eq_task_id for f in futures] == [1, 2, 3]

    def test_submit_with_tag(self, eq):
        future = eq.submit_task("e", 0, "p", tag="round-0")
        assert eq.store.tasks_for_tag("round-0") == [future.eq_task_id]


class TestQueryTask:
    def test_single_task_message_shape(self, eq):
        eq.submit_task("e", 0, '{"x": 1}')
        message = eq.query_task(0, timeout=0)
        assert message == {"type": "work", "eq_task_id": 1, "payload": '{"x": 1}'}

    def test_timeout_message_shape(self, eq):
        message = eq.query_task(0, timeout=0)
        assert message == TIMEOUT_MESSAGE
        assert message == {"type": "status", "payload": "TIMEOUT"}

    def test_multi_task_returns_list(self, eq):
        eq.submit_tasks("e", 0, ["a", "b", "c"])
        messages = eq.query_task(0, n=2, timeout=0)
        assert isinstance(messages, list)
        assert [m["payload"] for m in messages] == ["a", "b"]

    def test_multi_task_partial(self, eq):
        eq.submit_task("e", 0, "only")
        messages = eq.query_task(0, n=5, timeout=0)
        assert len(messages) == 1

    def test_priority_order(self, eq):
        eq.submit_task("e", 0, "low", priority=0)
        eq.submit_task("e", 0, "high", priority=10)
        assert eq.query_task(0, timeout=0)["payload"] == "high"

    def test_worker_pool_recorded(self, eq):
        future = eq.submit_task("e", 0, "p")
        eq.query_task(0, worker_pool="bebop-1", timeout=0)
        assert eq.task_info(future.eq_task_id).worker_pool == "bebop-1"

    def test_blocking_poll_succeeds(self, store):
        # Timeout > 0 with delay: the second poll attempt finds the task.
        import threading

        eq = EQSQL(store)

        def submit_later():
            eq.submit_task("e", 0, "late")

        t = threading.Timer(0.05, submit_later)
        t.start()
        message = eq.query_task(0, delay=0.01, timeout=2.0)
        t.join()
        assert message["payload"] == "late"


class TestQueryTaskBatch:
    def test_respects_policy(self, eq):
        eq.submit_tasks("e", 0, [f"p{i}" for i in range(10)])
        got = eq.query_task_batch(0, batch_size=5, threshold=1, owned=2, timeout=0)
        assert len(got) == 3

    def test_below_threshold_no_query(self, eq):
        eq.submit_tasks("e", 0, ["a", "b"])
        got = eq.query_task_batch(0, batch_size=10, threshold=9, owned=3, timeout=0)
        assert got == []
        # Tasks were not consumed.
        assert eq.queue_lengths(0)[0] == 2

    def test_empty_queue_returns_empty(self, eq):
        got = eq.query_task_batch(0, batch_size=5, threshold=1, owned=0, timeout=0)
        assert got == []


class TestReportAndResult:
    def test_round_trip(self, eq):
        future = eq.submit_task("e", 0, '{"x": 2}')
        message = eq.query_task(0, timeout=0)
        payload = json.loads(message["payload"])
        eq.report_task(message["eq_task_id"], 0, json.dumps({"y": payload["x"] ** 2}))
        status, result = eq.query_result(future.eq_task_id, timeout=0)
        assert status == ResultStatus.SUCCESS
        assert json.loads(result) == {"y": 4}

    def test_result_timeout(self, eq):
        future = eq.submit_task("e", 0, "p")
        status, payload = eq.query_result(future.eq_task_id, timeout=0)
        assert status == ResultStatus.FAILURE
        assert payload == "TIMEOUT"

    def test_result_consumed_once_at_store_level(self, eq):
        future = eq.submit_task("e", 0, "p")
        message = eq.query_task(0, timeout=0)
        eq.report_task(message["eq_task_id"], 0, "r")
        assert eq.query_result(future.eq_task_id, timeout=0)[0] == ResultStatus.SUCCESS
        assert eq.query_result(future.eq_task_id, timeout=0)[0] == ResultStatus.FAILURE


class TestStatusPriorityCancel:
    def test_query_status(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        eq.query_task(0, timeout=0)
        statuses = dict(eq.query_status([f.eq_task_id for f in futures]))
        assert statuses[futures[0].eq_task_id] == TaskStatus.RUNNING
        assert statuses[futures[1].eq_task_id] == TaskStatus.QUEUED

    def test_update_and_query_priorities(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        ids = [f.eq_task_id for f in futures]
        assert eq.update_priorities(ids, [3, 2, 1]) == 3
        assert dict(eq.query_priorities(ids)) == {ids[0]: 3, ids[1]: 2, ids[2]: 1}

    def test_cancel(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        assert eq.cancel_tasks([futures[0].eq_task_id]) == 1
        assert eq.query_task(0, timeout=0)["payload"] == "b"


class TestIntrospection:
    def test_queue_lengths(self, eq):
        eq.submit_tasks("e", 0, ["a", "b"])
        assert eq.queue_lengths() == (2, 0)
        message = eq.query_task(0, timeout=0)
        eq.report_task(message["eq_task_id"], 0, "r")
        assert eq.queue_lengths() == (1, 1)

    def test_are_queues_empty(self, eq):
        assert eq.are_queues_empty()
        future = eq.submit_task("e", 0, "p")
        assert not eq.are_queues_empty()
        message = eq.query_task(0, timeout=0)
        assert eq.are_queues_empty()  # running tasks are in neither queue
        eq.report_task(message["eq_task_id"], 0, "r")
        assert not eq.are_queues_empty()
        future.result(timeout=0)
        assert eq.are_queues_empty()


class TestInit:
    def test_init_memory(self):
        eq = init_eqsql()
        eq.submit_task("e", 0, "p")
        assert eq.queue_lengths()[0] == 1
        eq.close()

    def test_init_sqlite_file(self, tmp_path):
        path = str(tmp_path / "tasks.db")
        eq = init_eqsql(path)
        eq.submit_task("e", 0, "p")
        eq.close()
        # Durable: reopen and the task is still queued (fault tolerance).
        eq2 = init_eqsql(path)
        assert eq2.queue_lengths()[0] == 1
        eq2.close()

    def test_context_manager(self):
        with init_eqsql() as eq:
            eq.submit_task("e", 0, "p")
        with pytest.raises(RuntimeError):
            eq.store.create_task("e", 0, "p")

"""Property tests over the futures API (hypothesis).

The futures layer is a view over the DB; these properties pin down that
nothing is lost or duplicated through it under arbitrary priorities,
completion orders, and batch sizes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import EQSQL, ResultStatus, as_completed, update_priority
from repro.db import MemoryTaskStore


@settings(max_examples=40, deadline=None)
@given(
    priorities=st.lists(st.integers(-50, 50), min_size=1, max_size=25),
    batch=st.integers(min_value=1, max_value=25),
)
def test_every_future_yields_exactly_once(priorities, batch):
    eq = EQSQL(MemoryTaskStore())
    futures = eq.submit_tasks("e", 0, ["p"] * len(priorities), priority=priorities)
    # Execute everything inline.
    while True:
        message = eq.query_task(0, timeout=0)
        if message["type"] == "status":
            break
        eq.report_task(message["eq_task_id"], 0, f"r{message['eq_task_id']}")
    # Collect in batches of `batch`; every future exactly once.
    remaining = list(futures)
    seen: list[int] = []
    while remaining:
        got = list(as_completed(remaining, pop=True, n=batch, timeout=1))
        assert got, "as_completed starved despite completed results"
        seen.extend(f.eq_task_id for f in got)
    assert sorted(seen) == sorted(f.eq_task_id for f in futures)
    assert len(set(seen)) == len(seen)
    eq.close()


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    new_priorities=st.lists(st.integers(-100, 100), min_size=20, max_size=20),
)
def test_pool_pop_order_follows_future_priorities(n, new_priorities):
    eq = EQSQL(MemoryTaskStore())
    futures = eq.submit_tasks("e", 0, ["p"] * n)
    update_priority(futures, new_priorities[:n])
    popped = [
        m["eq_task_id"] for m in (eq.query_task(0, n=n, timeout=0) if n > 1 else [eq.query_task(0, timeout=0)])
    ]
    expected = sorted(
        (f.eq_task_id for f in futures),
        key=lambda tid: (-new_priorities[:n][tid - futures[0].eq_task_id], tid),
    )
    assert popped == expected
    eq.close()


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=15),
    cancel_mask=st.lists(st.booleans(), min_size=15, max_size=15),
)
def test_cancelled_futures_never_complete(n, cancel_mask):
    eq = EQSQL(MemoryTaskStore())
    futures = eq.submit_tasks("e", 0, ["p"] * n)
    for future, cancel in zip(futures, cancel_mask):
        if cancel:
            future.cancel()
    survivors = [f for f in futures if not f.cancelled]
    # Run the survivors.
    while True:
        message = eq.query_task(0, timeout=0)
        if message["type"] == "status":
            break
        eq.report_task(message["eq_task_id"], 0, "r")
    done = list(as_completed(futures, timeout=1))
    assert {f.eq_task_id for f in done} == {f.eq_task_id for f in survivors}
    for future in futures:
        if future.cancelled:
            assert future.result(timeout=0) == (ResultStatus.FAILURE, "TIMEOUT")
    eq.close()

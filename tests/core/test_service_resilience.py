"""RemoteTaskStore resilience: reconnect, retry classification, desync.

The client promises: idempotent RPCs survive any connection fault
transparently (teardown, backoff, re-handshake, re-send); non-idempotent
RPCs are retried only when the request provably never left (connect
failure), and otherwise raise ConnectionBrokenError; a desynced socket
is never reused.  The chaos proxy provides the faults.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.core import RemoteTaskStore, TaskService
from repro.core import protocol
from repro.core.service_client import (
    IDEMPOTENT_METHODS,
    NON_IDEMPOTENT_METHODS,
    RetryPolicy,
)
from repro.db import MemoryTaskStore
from repro.db.backend import TaskStore
from repro.telemetry.metrics import MetricsRegistry
from repro.testing import ChaosProxy
from repro.util.errors import ConnectionBrokenError, ServiceUnavailableError

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.05)


@pytest.fixture
def service():
    backing = MemoryTaskStore()
    svc = TaskService(backing).start()
    yield svc
    svc.stop()
    backing.close()


@pytest.fixture
def proxy(service):
    with ChaosProxy(*service.address, rng=random.Random(7)) as p:
        yield p


@pytest.fixture
def client(proxy):
    metrics = MetricsRegistry()
    store = RemoteTaskStore(
        *proxy.address, retry=FAST_RETRY, metrics=metrics, rng=random.Random(7)
    )
    store.test_metrics = metrics
    yield store
    store.close()


class TestRetryClassification:
    def test_every_store_method_is_classified(self):
        # A new TaskStore method must be placed in exactly one bucket —
        # an unclassified method would silently default to non-retry.
        rpc_methods = {
            name
            for name in TaskStore.__abstractmethods__
            if name != "close"
        }
        classified = IDEMPOTENT_METHODS | NON_IDEMPOTENT_METHODS
        assert rpc_methods <= classified
        assert not (IDEMPOTENT_METHODS & NON_IDEMPOTENT_METHODS)

    def test_mutating_but_convergent_methods_are_idempotent(self):
        for method in ("report", "requeue", "renew_leases", "requeue_expired"):
            assert method in IDEMPOTENT_METHODS

    def test_pops_and_creates_are_not(self):
        for method in ("create_task", "create_tasks", "pop_out", "pop_in"):
            assert method in NON_IDEMPOTENT_METHODS


class TestReconnectAndRetry:
    def test_idempotent_call_survives_sever(self, proxy, client):
        client.create_task("exp", 0, "p")
        assert proxy.sever_all() >= 1
        # The read fails on the dead socket; the client reconnects
        # (through the proxy) and re-sends transparently.
        assert client.queue_out_length(0) == 1
        assert client.connected
        assert client.test_metrics.get("service.client.reconnects").value >= 1

    def test_report_survives_sever(self, proxy, client):
        tid = client.create_task("exp", 0, "p")
        client.pop_out(0, worker_pool="w")
        proxy.sever_all()
        client.report(tid, 0, "result")  # idempotent: retried
        assert client.pop_in(tid) == "result"

    def test_lease_calls_survive_sever(self, proxy, client):
        tid = client.create_task("exp", 0, "p")
        client.pop_out(0, worker_pool="w", now=0.0, lease=10.0)
        proxy.sever_all()
        assert client.renew_leases([tid], now=5.0, lease=10.0) == 1
        proxy.sever_all()
        assert client.requeue_expired(now=30.0) == [tid]

    def test_non_idempotent_mid_request_raises_connection_broken(
        self, proxy, client
    ):
        proxy.sever_all()  # client holds a socket the proxy just killed
        with pytest.raises(ConnectionBrokenError):
            client.create_task("exp", 0, "p")
        # The desynced socket was torn down, not kept.
        assert not client.connected
        # The caller decides to retry; a fresh connection serves it.
        assert client.create_task("exp", 0, "p2") >= 1

    def test_retries_exhausted_raises_service_unavailable(self, proxy, client):
        client.queue_in_length()  # establish
        proxy.pause()  # outage: new connections are refused
        proxy.sever_all()
        with pytest.raises(ServiceUnavailableError):
            client.queue_in_length()
        # Outage ends; the same client recovers on the next call.
        proxy.resume()
        assert client.queue_in_length() == 0

    def test_constructor_fails_fast_when_unreachable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises((OSError, ConnectionError)):
            RemoteTaskStore("127.0.0.1", port)

    def test_closed_client_refuses_calls(self, client):
        client.close()
        with pytest.raises(RuntimeError):
            client.queue_in_length()


class _MisbehavingServer:
    """A fake service that handshakes correctly, then answers every
    subsequent request with a mismatched response id (a stale frame)."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._stop = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            first = True
            while True:
                request = protocol.read_message(rfile)
                if request is None:
                    return
                if first:
                    protocol.write_message(wfile, {
                        "id": request["id"], "ok": True,
                        "result": {"version": protocol.PROTOCOL_VERSION},
                    })
                    first = False
                else:
                    protocol.write_message(wfile, {
                        "id": request["id"] + 1000, "ok": True, "result": None,
                    })
        except (OSError, ValueError):
            pass
        finally:
            conn.close()

    def close(self):
        self._stop = True
        self._listener.close()


class TestDesyncDetection:
    # Regression for the stale-frame hazard: a response whose id does
    # not match the request must never be returned as the result, and
    # the connection must be replaced, not reused.

    def test_mismatched_id_on_non_idempotent_breaks_connection(self):
        server = _MisbehavingServer()
        try:
            client = RemoteTaskStore(*server.address, retry=FAST_RETRY)
            with pytest.raises(ConnectionBrokenError):
                client.create_task("exp", 0, "p")
            assert not client.connected
            client.close()
        finally:
            server.close()

    def test_mismatched_id_on_idempotent_retries_then_gives_up(self):
        server = _MisbehavingServer()
        try:
            client = RemoteTaskStore(
                *server.address,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.02),
            )
            # Every attempt gets a fresh connection and a fresh stale
            # frame; the client must keep discarding, never pair the
            # wrong response with the request.
            with pytest.raises(ServiceUnavailableError, match="desynced"):
                client.queue_in_length()
            client.close()
        finally:
            server.close()


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0,
                             jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(10, rng) == pytest.approx(1.0)  # capped

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0,
                             jitter=0.5)
        rng = random.Random(42)
        for attempt in range(6):
            raw = min(1.0, 0.1 * 2.0**attempt)
            for _ in range(50):
                d = policy.delay(attempt, rng)
                assert raw * 0.5 <= d <= raw

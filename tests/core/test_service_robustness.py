"""Adversarial tests: the EMEWS service under hostile/buggy clients.

A resource-local service shared by many pools must shrug off malformed
frames, unknown methods, bad parameters, and abrupt disconnects without
corrupting state or denying service to well-behaved clients.
"""

from __future__ import annotations

import socket

import pytest

from repro.core import EQSQL, RemoteTaskStore, TaskService
from repro.core.protocol import read_message, write_message
from repro.db import MemoryTaskStore


@pytest.fixture
def service():
    backing = MemoryTaskStore()
    svc = TaskService(backing).start()
    yield svc
    svc.stop()
    backing.close()


def raw_connection(service):
    host, port = service.address
    sock = socket.create_connection((host, port), timeout=5)
    return sock, sock.makefile("rb"), sock.makefile("wb")


class TestMalformedTraffic:
    def test_garbage_line_drops_connection_not_server(self, service):
        sock, _rfile, wfile = raw_connection(service)
        wfile.write(b"this is not json\n")
        wfile.flush()
        sock.close()
        # The server still serves a proper client.
        host, port = service.address
        store = RemoteTaskStore(host, port)
        assert store.create_task("e", 0, "p") == 1
        store.close()

    def test_non_object_frame(self, service):
        sock, rfile, wfile = raw_connection(service)
        wfile.write(b"[1, 2, 3]\n")
        wfile.flush()
        # Connection is dropped (read returns EOF); server survives.
        assert rfile.readline() == b""
        sock.close()

    def test_unknown_method_clean_error(self, service):
        sock, rfile, wfile = raw_connection(service)
        write_message(wfile, {"id": 1, "method": "drop_all_tables", "params": {}})
        response = read_message(rfile)
        assert response is not None
        assert response["ok"] is False
        assert "unknown method" in response["error"]["message"]
        sock.close()

    def test_missing_method_clean_error(self, service):
        sock, rfile, wfile = raw_connection(service)
        write_message(wfile, {"id": 2, "params": {}})
        response = read_message(rfile)
        assert response["ok"] is False
        sock.close()

    def test_bad_params_type(self, service):
        sock, rfile, wfile = raw_connection(service)
        write_message(wfile, {"id": 3, "method": "pop_in", "params": [1]})
        response = read_message(rfile)
        assert response["ok"] is False
        sock.close()

    def test_wrong_param_names_reported(self, service):
        sock, rfile, wfile = raw_connection(service)
        write_message(
            wfile, {"id": 4, "method": "pop_in", "params": {"wrong": 1}}
        )
        response = read_message(rfile)
        assert response["ok"] is False
        sock.close()

    def test_abrupt_disconnect_mid_session(self, service):
        host, port = service.address
        store = RemoteTaskStore(host, port)
        store.create_tasks("e", 0, ["a", "b"])
        # Kill the socket without goodbye.
        store._sock.close()
        # State intact; fresh client sees both tasks.
        fresh = RemoteTaskStore(host, port)
        assert fresh.queue_out_length(0) == 2
        fresh.close()


class TestConcurrentHostileAndFriendly:
    def test_friendly_clients_unharmed_by_fuzzer(self, service):
        import threading

        host, port = service.address
        stop = threading.Event()

        def fuzzer():
            junk = [b"\n", b"{}\n", b'{"id": null}\n', b"\x00\xff\n", b'"str"\n']
            while not stop.is_set():
                try:
                    sock = socket.create_connection((host, port), timeout=2)
                    for frame in junk:
                        sock.sendall(frame)
                    sock.close()
                except OSError:
                    pass

        thread = threading.Thread(target=fuzzer, daemon=True)
        thread.start()
        try:
            eq = EQSQL(RemoteTaskStore(host, port))
            futures = eq.submit_tasks("e", 0, [f"p{i}" for i in range(30)])
            messages = eq.query_task(0, n=30, timeout=5)
            assert len(messages) == 30
            for message in messages:
                eq.report_task(message["eq_task_id"], 0, "r")
            done = sum(
                1 for f in futures if f.result(timeout=1)[0].value == "success"
            )
            assert done == 30
        finally:
            stop.set()
            thread.join(timeout=5)

"""Tests for fault-tolerant task recovery."""

from __future__ import annotations

import pytest

from repro.core import EQSQL, TaskStatus, as_completed
from repro.core.recovery import find_orphaned_tasks, recover_pool, requeue_tasks
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.util.clock import VirtualClock
from repro.util.errors import NotFoundError


@pytest.fixture
def eq(store):
    return EQSQL(store)


def submit_and_claim(eq, n=4, pool="dead-pool", claim=None):
    futures = eq.submit_tasks("exp", 0, [f"p{i}" for i in range(n)])
    eq.query_task(0, n=claim if claim is not None else n, worker_pool=pool, timeout=0)
    return futures


class TestRequeueStoreOp:
    def test_requeue_running_task(self, eq):
        futures = submit_and_claim(eq, n=1)
        tid = futures[0].eq_task_id
        assert eq.store.requeue(tid, priority=5)
        row = eq.task_info(tid)
        assert row.eq_status == TaskStatus.QUEUED
        assert row.worker_pool is None
        assert row.time_start is None
        # Back on the queue at the requested priority.
        assert dict(eq.query_priorities([tid])) == {tid: 5}
        message = eq.query_task(0, timeout=0)
        assert message["eq_task_id"] == tid

    def test_requeue_non_running_is_noop(self, eq):
        future = eq.submit_task("exp", 0, "p")
        assert not eq.store.requeue(future.eq_task_id)
        message = eq.query_task(0, timeout=0)
        eq.report_task(message["eq_task_id"], 0, "r")
        assert not eq.store.requeue(future.eq_task_id)

    def test_requeue_unknown_raises(self, eq):
        with pytest.raises(NotFoundError):
            eq.store.requeue(999)


class TestFindOrphans:
    def test_finds_running_tasks_of_dead_pool(self, eq):
        submit_and_claim(eq, n=3, pool="dead-pool")
        orphans = find_orphaned_tasks(eq, "exp", worker_pool="dead-pool")
        assert len(orphans) == 3
        assert all(o.worker_pool == "dead-pool" for o in orphans)

    def test_other_pools_not_flagged(self, eq):
        eq.submit_tasks("exp", 0, ["a", "b"])
        eq.query_task(0, worker_pool="alive", timeout=0)
        eq.query_task(0, worker_pool="dead", timeout=0)
        orphans = find_orphaned_tasks(eq, "exp", worker_pool="dead")
        assert len(orphans) == 1

    def test_queued_and_complete_not_flagged(self, eq):
        futures = submit_and_claim(eq, n=2, claim=1)
        running_id = futures[0].eq_task_id
        eq.report_task(running_id, 0, "r")  # now COMPLETE
        orphans = find_orphaned_tasks(eq, "exp")
        assert orphans == []

    def test_stuck_after_heuristic(self, store):
        clock = VirtualClock()
        eq = EQSQL(store, clock=clock)
        eq.submit_tasks("exp", 0, ["a", "b"])
        eq.query_task(0, timeout=0)  # starts at t=0
        clock.advance(100)
        eq.query_task(0, timeout=0)  # starts at t=100
        orphans = find_orphaned_tasks(eq, "exp", stuck_after=50)
        assert len(orphans) == 1

    def test_none_time_start_is_infinitely_stuck(self, store):
        # Regression: a RUNNING row with no recorded start time (a
        # half-applied claim) used to slip past the stuck_after
        # heuristic; it must be flagged no matter the window.
        from repro.db import SqliteTaskStore

        clock = VirtualClock()
        eq = EQSQL(store, clock=clock)
        eq.submit_task("exp", 0, "p")
        message = eq.query_task(0, timeout=0)
        tid = message["eq_task_id"]
        if isinstance(store, SqliteTaskStore):
            with store._txn() as cur:
                cur.execute(
                    "UPDATE eq_tasks SET time_start = NULL WHERE eq_task_id = ?",
                    (tid,),
                )
        else:
            store._tasks[tid].time_start = None
        clock.advance(10)
        orphans = find_orphaned_tasks(eq, "exp", stuck_after=1_000_000)
        assert [o.eq_task_id for o in orphans] == [tid]
        assert orphans[0].time_start is None
        assert requeue_tasks(eq, orphans) == 1

    def test_unknown_experiment_empty(self, eq):
        assert find_orphaned_tasks(eq, "no-such-exp") == []


class TestRequeueAndRecover:
    def test_requeue_tasks_skips_since_completed(self, eq):
        futures = submit_and_claim(eq, n=2)
        orphans = find_orphaned_tasks(eq, "exp")
        # One of them reports late, after detection.
        eq.report_task(futures[0].eq_task_id, 0, "late-result")
        assert requeue_tasks(eq, orphans) == 1
        assert eq.task_info(futures[1].eq_task_id).eq_status == TaskStatus.QUEUED
        assert eq.task_info(futures[0].eq_task_id).eq_status == TaskStatus.COMPLETE

    def test_recover_pool_one_call(self, eq):
        submit_and_claim(eq, n=3, pool="preempted")
        assert recover_pool(eq, "exp", "preempted") == 3
        assert eq.queue_lengths(0)[0] == 3

    def test_future_resolves_after_recovery(self, eq):
        """The paper's fault-tolerance promise end-to-end: a task lost
        with its pool is re-executed and the original future resolves."""
        futures = submit_and_claim(eq, n=2, pool="crashed")
        assert recover_pool(eq, "exp", "crashed") == 2
        # A live pool picks the work up.
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda s: f"done:{s}", json_io=False),
            PoolConfig(work_type=0, n_workers=2, name="replacement"),
        ).start()
        done = list(as_completed(futures, timeout=20, delay=0.01))
        pool.stop()
        assert len(done) == 2
        for f in done:
            _, result = f.result(timeout=0)
            assert result.startswith("done:")
            assert eq.task_info(f.eq_task_id).worker_pool == "replacement"

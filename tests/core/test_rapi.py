"""Tests for the R-style functional API facade (Listing 1 parity)."""

from __future__ import annotations

import pytest

from repro.core import rapi
from repro.core.eqsql import init_eqsql
from repro.util.errors import InvalidStateError


@pytest.fixture(autouse=True)
def clean_module():
    rapi.eq_shutdown()
    yield
    rapi.eq_shutdown()


class TestLifecycle:
    def test_requires_init(self):
        with pytest.raises(InvalidStateError):
            rapi.eq_submit_task("e", 0, "p")

    def test_double_init_rejected(self):
        rapi.eq_init()
        with pytest.raises(InvalidStateError):
            rapi.eq_init()

    def test_shutdown_then_reinit(self):
        rapi.eq_init()
        rapi.eq_shutdown(close=True)
        rapi.eq_init()
        assert rapi.eq_submit_task("e", 0, "p") == 1

    def test_shared_connection(self):
        eq = init_eqsql()
        rapi.eq_init(eqsql=eq)
        tid = rapi.eq_submit_task("e", 0, "shared")
        # Visible through the Python-side handle too.
        assert eq.queue_lengths(0)[0] == 1
        assert eq.task_info(tid).json_out == "shared"
        rapi.eq_shutdown()
        eq.close()


class TestRoundTrip:
    def test_listing1_workflow(self):
        rapi.eq_init()
        tid = rapi.eq_submit_task("exp1", 0, '{"sample": [1, 2]}', priority=3)
        work = rapi.eq_query_task(0, timeout=0)
        assert work["type"] == "work"
        assert work["eq_task_id"] == tid
        rapi.eq_report_task(tid, 0, '{"value": 42}')
        result = rapi.eq_query_result(tid, timeout=0)
        assert result == {"type": "result", "eq_task_id": tid, "payload": '{"value": 42}'}

    def test_query_task_timeout(self):
        rapi.eq_init()
        assert rapi.eq_query_task(0, timeout=0) == {"type": "status", "payload": "TIMEOUT"}

    def test_query_result_timeout(self):
        rapi.eq_init()
        tid = rapi.eq_submit_task("e", 0, "p")
        assert rapi.eq_query_result(tid, timeout=0) == {
            "type": "status",
            "payload": "TIMEOUT",
        }

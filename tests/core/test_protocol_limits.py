"""Protocol framing limits and batch writes.

The reader must bound per-frame memory (a peer streaming an endless
line would otherwise grow ``readline``'s buffer without limit), and the
batch writer must emit byte-identical frames to N single writes — the
pipelining primitive is purely a syscall/flush optimization.
"""

from __future__ import annotations

import io

import pytest

from repro.core import protocol
from repro.util.errors import SerializationError


class TestMaxFrame:
    def test_oversized_frame_raises(self):
        stream = io.BytesIO(b"x" * 100 + b"\n")
        with pytest.raises(SerializationError, match="max frame size"):
            protocol.read_frame(stream, max_frame=50)

    def test_oversized_frame_without_newline_raises(self):
        # A never-terminated line must fail at the cap, not at EOF.
        stream = io.BytesIO(b"x" * 1000)
        with pytest.raises(SerializationError, match="max frame size"):
            protocol.read_frame(stream, max_frame=50)

    def test_frame_at_limit_passes(self):
        frame = protocol.encode_message({"id": 1})
        message, size = protocol.read_frame(
            io.BytesIO(frame), max_frame=len(frame)
        )
        assert message == {"id": 1}
        assert size == len(frame)

    def test_default_limit_is_generous(self):
        # Real payloads (fabric cap: 10 MB) fit far under the default.
        assert protocol.MAX_FRAME_BYTES >= 32 * 1024 * 1024

    def test_eof_still_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b""), max_frame=10) == (None, 0)


class TestWriteMessages:
    def test_coalesced_bytes_match_single_writes(self):
        messages = [{"id": i, "method": "ping", "params": {}} for i in range(5)]
        single = io.BytesIO()
        for message in messages:
            protocol.write_message(single, message)
        batch = io.BytesIO()
        written = protocol.write_messages(batch, messages)
        assert batch.getvalue() == single.getvalue()
        assert written == len(batch.getvalue())

    def test_empty_batch_writes_nothing(self):
        stream = io.BytesIO()
        assert protocol.write_messages(stream, []) == 0
        assert stream.getvalue() == b""

    def test_frames_round_trip(self):
        messages = [{"id": i, "ok": True, "result": i * 2} for i in range(3)]
        stream = io.BytesIO()
        protocol.write_messages(stream, messages)
        stream.seek(0)
        assert [protocol.read_message(stream) for _ in range(3)] == messages

"""Tests of the batch/threshold fetch policy (paper §IV-D)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.fetch import FetchPolicy, fetch_count


class TestFetchCount:
    def test_paper_example(self):
        # "if a worker pool is configured to possess 33 tasks at a time,
        # if it owns 30 uncompleted tasks ... it will only obtain 3".
        assert fetch_count(33, 1, 30) == 3

    def test_full_batch_when_empty(self):
        assert fetch_count(33, 1, 0) == 33

    def test_threshold_blocks_small_deficit(self):
        # Threshold 15: with 20 owned (deficit 13 < 15) fetch nothing.
        assert fetch_count(33, 15, 20) == 0
        # With 18 owned (deficit 15 >= 15) fetch the whole deficit.
        assert fetch_count(33, 15, 18) == 15

    def test_at_capacity_fetches_nothing(self):
        assert fetch_count(33, 1, 33) == 0

    def test_over_capacity_fetches_nothing(self):
        # Owned can transiently exceed batch after a config change.
        assert fetch_count(33, 1, 40) == 0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            fetch_count(0, 1, 0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            fetch_count(10, 0, 0)
        with pytest.raises(ValueError):
            fetch_count(10, 11, 0)

    def test_invalid_owned(self):
        with pytest.raises(ValueError):
            fetch_count(10, 1, -1)

    @given(
        batch=st.integers(min_value=1, max_value=200),
        threshold_frac=st.floats(min_value=0, max_value=1),
        owned=st.integers(min_value=0, max_value=250),
    )
    def test_invariants(self, batch, threshold_frac, owned):
        threshold = max(1, min(batch, int(round(threshold_frac * batch))))
        n = fetch_count(batch, threshold, owned)
        # Never exceed capacity.
        assert owned + n <= batch or n == 0
        # Either fetch nothing or at least the threshold.
        assert n == 0 or n >= threshold
        # Fetching is exactly the deficit when it happens.
        if n > 0:
            assert n == batch - owned


class TestFetchPolicy:
    def test_to_fetch_delegates(self):
        policy = FetchPolicy(batch_size=50, threshold=1)
        assert policy.to_fetch(0) == 50
        assert policy.to_fetch(49) == 1

    def test_validates_at_construction(self):
        with pytest.raises(ValueError):
            FetchPolicy(batch_size=5, threshold=6)

    def test_oversubscription_detection(self):
        # Fig 3 top panel: batch 50 against 33 workers oversubscribes.
        assert FetchPolicy(50, 1).oversubscribes(33)
        assert not FetchPolicy(33, 1).oversubscribes(33)

    def test_frozen(self):
        policy = FetchPolicy(10, 2)
        with pytest.raises(AttributeError):
            policy.batch_size = 20  # type: ignore[misc]

"""Tests for Future and the asynchronous collection functions (§V-B)."""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    EQSQL,
    ResultStatus,
    TaskStatus,
    as_completed,
    cancel_futures,
    pop_completed,
    update_priority,
)
from repro.util.errors import TimeoutError_


@pytest.fixture
def eq(store):
    return EQSQL(store)


def run_tasks(eq, eq_type=0, n=None):
    """Execute queued tasks inline: pop, evaluate len(payload), report."""
    count = 0
    while True:
        message = eq.query_task(eq_type, timeout=0)
        if message["type"] == "status":
            break
        eq.report_task(message["eq_task_id"], eq_type, f"len={len(message['payload'])}")
        count += 1
        if n is not None and count >= n:
            break
    return count


class TestFuture:
    def test_lifecycle(self, eq):
        future = eq.submit_task("e", 0, "abc")
        assert future.status == TaskStatus.QUEUED
        assert not future.done()
        message = eq.query_task(0, timeout=0)
        assert future.status == TaskStatus.RUNNING
        eq.report_task(message["eq_task_id"], 0, "r")
        assert future.done()
        assert future.status == TaskStatus.COMPLETE

    def test_result_cached(self, eq):
        future = eq.submit_task("e", 0, "abc")
        run_tasks(eq)
        status, result = future.result(timeout=0)
        assert status == ResultStatus.SUCCESS
        # Second call served from the cache even though the input-queue
        # row was consumed.
        assert future.result(timeout=0) == (ResultStatus.SUCCESS, result)

    def test_result_timeout(self, eq):
        future = eq.submit_task("e", 0, "abc")
        assert future.result(timeout=0) == (ResultStatus.FAILURE, "TIMEOUT")

    def test_cancel_queued(self, eq):
        future = eq.submit_task("e", 0, "abc")
        assert future.cancel()
        assert future.cancelled
        assert future.status == TaskStatus.CANCELED
        assert future.done()

    def test_cancel_running_fails(self, eq):
        future = eq.submit_task("e", 0, "abc")
        eq.query_task(0, timeout=0)
        assert not future.cancel()
        assert future.status == TaskStatus.RUNNING

    def test_cancel_idempotent(self, eq):
        future = eq.submit_task("e", 0, "abc")
        assert future.cancel()
        assert future.cancel()

    def test_cancel_running_does_not_lie(self, eq):
        """Regression (ISSUE 7): a failed cancel of a RUNNING task must
        leave the future tracking store truth — the pool may still
        report a result, and the future must surface it."""
        future = eq.submit_task("e", 0, "abc")
        message = eq.query_task(0, timeout=0)
        assert not future.cancel()
        assert not future.cancelled
        assert future.status == TaskStatus.RUNNING
        eq.report_task(message["eq_task_id"], 0, "late-result")
        assert future.status == TaskStatus.COMPLETE
        assert future.result(timeout=0) == (ResultStatus.SUCCESS, "late-result")

    def test_cancel_true_when_another_actor_cancelled(self, eq):
        """cancel() consults the store when cancel_tasks reports 0: an id
        already CANCELED elsewhere (another caller, or a retried RPC
        whose first response was lost) still counts as cancelled."""
        future = eq.submit_task("e", 0, "abc")
        assert eq.cancel_tasks([future.eq_task_id]) == 1
        assert future.cancel()
        assert future.cancelled

    def test_priority_get_set(self, eq):
        future = eq.submit_task("e", 0, "abc", priority=5)
        assert future.priority == 5
        future.priority = 9
        assert future.priority == 9

    def test_priority_none_after_pop(self, eq):
        future = eq.submit_task("e", 0, "abc")
        eq.query_task(0, timeout=0)
        assert future.priority is None

    def test_repr(self, eq):
        future = eq.submit_task("e", 0, "abc")
        assert "queued" in repr(future)


class TestAsCompleted:
    def test_yields_all(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "bb", "ccc"])
        run_tasks(eq)
        done = list(as_completed(futures, timeout=1))
        assert {f.eq_task_id for f in done} == {f.eq_task_id for f in futures}
        # Results are cached on each yielded future.
        assert all(f.result(timeout=0)[0] == ResultStatus.SUCCESS for f in done)

    def test_yields_n_and_stops(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c", "d"])
        run_tasks(eq)
        done = list(as_completed(futures, n=2, timeout=1))
        assert len(done) == 2

    def test_pop_removes_from_list(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        run_tasks(eq)
        done = list(as_completed(futures, pop=True, n=2, timeout=1))
        assert len(done) == 2
        assert len(futures) == 1
        assert futures[0] not in done

    def test_completion_order_not_submission_order(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        # Complete the last-submitted task first.
        for want in (futures[2], futures[0], futures[1]):
            messages = eq.query_task(0, n=1, timeout=0)
            # pop order is FIFO, so force specific completion by
            # reporting the specific id we want regardless of pop.
        # Simpler: pop all three, then report in reverse order.
        eq2_ids = [f.eq_task_id for f in futures]
        for tid in reversed(eq2_ids):
            eq.report_task(tid, 0, f"r{tid}")
        done = list(as_completed(futures, timeout=1))
        assert len(done) == 3

    def test_empty_input(self, eq):
        assert list(as_completed([], timeout=0)) == []

    def test_timeout_raises(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        with pytest.raises(TimeoutError_):
            list(as_completed(futures, timeout=0, delay=0.01))

    def test_skips_cancelled(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        futures[1].cancel()
        # Complete the two live tasks.
        run_tasks(eq)
        done = list(as_completed(futures, timeout=1))
        assert {f.eq_task_id for f in done} == {
            futures[0].eq_task_id,
            futures[2].eq_task_id,
        }

    def test_all_cancelled_ends_generator(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        cancel_futures(futures)
        assert list(as_completed(futures, timeout=0)) == []

    def test_cached_results_yield_without_db(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        run_tasks(eq)
        for f in futures:
            f.result(timeout=0)
        done = list(as_completed(futures, timeout=0))
        assert len(done) == 2


class TestPopCompleted:
    def test_pops_first_completed(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        ids = [f.eq_task_id for f in futures]
        eq.query_task(0, n=3, timeout=0)
        eq.report_task(ids[1], 0, "first-done")
        future = pop_completed(futures, timeout=1)
        assert future.eq_task_id == ids[1]
        assert len(futures) == 2
        assert future.result(timeout=0) == (ResultStatus.SUCCESS, "first-done")

    def test_concurrent_completion(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])

        def worker():
            message = eq.query_task(0, timeout=1)
            eq.report_task(message["eq_task_id"], 0, "done")

        t = threading.Thread(target=worker)
        t.start()
        future = pop_completed(futures, delay=0.01, timeout=5)
        t.join()
        assert future.result(timeout=0)[0] == ResultStatus.SUCCESS

    def test_timeout(self, eq):
        futures = eq.submit_tasks("e", 0, ["a"])
        with pytest.raises(TimeoutError_):
            pop_completed(futures, timeout=0, delay=0.01)


class TestBatchPriorityAndCancel:
    def test_update_priority_scalar(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        assert update_priority(futures, 7) == 3
        assert all(f.priority == 7 for f in futures)

    def test_update_priority_sequence(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        assert update_priority(futures, [4, 8]) == 2
        assert futures[0].priority == 4
        assert futures[1].priority == 8

    def test_update_priority_skips_popped(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b"])
        eq.query_task(0, timeout=0)
        assert update_priority(futures, 9) == 1

    def test_update_priority_empty(self):
        assert update_priority([], 5) == 0

    def test_cancel_futures_batch(self, eq):
        futures = eq.submit_tasks("e", 0, ["a", "b", "c"])
        eq.query_task(0, timeout=0)  # first is running
        assert cancel_futures(futures) == 2
        assert not futures[0].cancelled
        assert futures[1].cancelled and futures[2].cancelled

    def test_cancel_futures_empty(self):
        assert cancel_futures([]) == 0

"""Event-driven dispatch through the service, client, and ME layers.

The store-level wait contract is covered by ``tests/db/test_wait.py``;
these tests prove the layers above plumb it end-to-end: the service
grants (and caps) ``wait_ms``, the client rides a dedicated wait channel
that never blocks lockstep RPCs, EQSQL/futures take the long-poll fast
path against wait-capable stores, and every layer still works against a
store without wait support.  Timing bounds are deliberately generous —
each "prompt" assertion allows seconds where the polling path would
need tens of seconds.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import EQSQL, RemoteTaskStore, TaskService
from repro.core.constants import ResultStatus
from repro.core.futures import as_completed
from repro.db import MemoryTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool

# Wall-clock assertions throughout; carry the ``timing`` marker so
# loaded CI machines can deselect with ``-m 'not timing'``.
pytestmark = pytest.mark.timing

PROMPT = 3.0
#: How long a helper may take to park / both-park under load.
PARK_DEADLINE = 10.0


class _PollingOnlyStore:
    """A wait-incapable view of a real store (legacy-backend stand-in)."""

    supports_wait = False

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture
def service_stack():
    backing = MemoryTaskStore()
    service = TaskService(backing).start()
    client = RemoteTaskStore(*service.address)
    yield backing, service, client
    client.close()
    service.stop()
    backing.close()


def _park_one_waiter(service, call):
    """Start ``call`` in a thread and wait until the service parks it."""
    results = []
    thread = threading.Thread(target=lambda: results.append(call()))
    thread.start()
    deadline = time.monotonic() + PARK_DEADLINE
    while service.status_snapshot()["service"]["waiters"] < 1:
        assert time.monotonic() < deadline, "wait RPC never parked"
        time.sleep(0.005)
    return thread, results


class TestServiceWaitGrant:
    def test_remote_wait_wakes_on_create(self, service_stack):
        _, service, client = service_stack
        thread, results = _park_one_waiter(
            service,
            lambda: client.pop_out(0, 1, worker_pool="w", now=1.0, wait=10.0),
        )
        t0 = time.monotonic()
        [tid] = client.create_tasks("e", 0, ["p"], time_created=0.0)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert time.monotonic() - t0 < PROMPT
        assert results == [[(tid, "p")]]

    def test_wait_grant_is_capped_by_max_wait_ms(self):
        backing = MemoryTaskStore()
        service = TaskService(backing, max_wait_ms=50).start()
        client = RemoteTaskStore(*service.address)
        try:
            t0 = time.monotonic()
            got = client.pop_out(0, 1, worker_pool="w", now=1.0, wait=10.0)
            elapsed = time.monotonic() - t0
            assert got == []
            assert elapsed < PROMPT  # 10s ask, 50ms grant
        finally:
            client.close()
            service.stop()
            backing.close()

    def test_wait_over_polling_only_store_degrades_to_nonblocking(self):
        backing = MemoryTaskStore()
        service = TaskService(_PollingOnlyStore(backing)).start()
        client = RemoteTaskStore(*service.address)
        try:
            t0 = time.monotonic()
            assert client.pop_out(0, 1, worker_pool="w", now=1.0, wait=10.0) == []
            assert time.monotonic() - t0 < PROMPT
        finally:
            client.close()
            service.stop()
            backing.close()

    def test_waiters_gauge_tracks_parked_handlers(self, service_stack):
        _, service, client = service_stack
        # The wait must comfortably outlast the gauge check below even
        # on a stalled machine, yet still expire well inside the join.
        thread, _ = _park_one_waiter(
            service,
            lambda: client.pop_in_any([999], wait=5.0),
        )
        assert service.status_snapshot()["service"]["waiters"] == 1
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert service.status_snapshot()["service"]["waiters"] == 0

    def test_stop_wakes_parked_waiters(self):
        backing = MemoryTaskStore()
        service = TaskService(backing).start()
        client = RemoteTaskStore(*service.address)
        try:
            thread, results = _park_one_waiter(
                service,
                lambda: client.pop_out(0, 1, worker_pool="w", now=1.0, wait=30.0),
            )
            t0 = time.monotonic()
            service.stop()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert time.monotonic() - t0 < PROMPT
            assert results == [[]]
        finally:
            client.close()
            backing.close()


class TestClientWaitChannel:
    def test_lockstep_rpcs_run_while_a_wait_is_parked(self, service_stack):
        """A parked wait must not hold the shared connection: fetchers
        and reporters on the same client keep working."""
        _, service, client = service_stack
        thread, _ = _park_one_waiter(
            service,
            lambda: client.pop_out(0, 1, worker_pool="w", now=1.0, wait=1.0),
        )
        t0 = time.monotonic()
        assert client.queue_out_length() == 0
        assert client.queue_in_length() == 0
        assert time.monotonic() - t0 < PROMPT
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_concurrent_waiters_each_get_a_channel(self, service_stack):
        _, service, client = service_stack
        results = []

        def wait_for(tid):
            results.append(client.pop_in_any([tid], wait=10.0))

        ids = client.create_tasks("e", 0, ["a", "b"], time_created=0.0)
        client.pop_out(0, 2, worker_pool="w", now=1.0)
        threads = [
            threading.Thread(target=wait_for, args=(tid,)) for tid in ids
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + PARK_DEADLINE
        while service.status_snapshot()["service"]["waiters"] < 2:
            assert time.monotonic() < deadline, "waiters never both parked"
            time.sleep(0.005)
        # One report wakes exactly the waiter watching that id.
        client.report_batch([(ids[0], 0, "ra"), (ids[1], 0, "rb")], now=2.0)
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive()
        assert sorted(r for [(_, r)] in results) == ["ra", "rb"]

    def test_remote_store_advertises_wait(self, service_stack):
        _, _, client = service_stack
        assert client.supports_wait is True


class TestEqsqlFastPath:
    def test_use_wait_gates(self):
        backing = MemoryTaskStore()
        try:
            eq = EQSQL(backing)
            assert eq._use_wait(None)
            assert eq._use_wait(10.0)
            assert not eq._use_wait(0)  # explicit non-blocking probe
            polling = EQSQL(_PollingOnlyStore(backing))
            assert not polling._use_wait(None)
        finally:
            backing.close()

    def test_query_result_returns_at_event_not_delay_tick(self):
        backing = MemoryTaskStore()
        try:
            eq = EQSQL(backing)
            future = eq.submit_task("e", 0, json.dumps({"x": 1}))

            def worker():
                time.sleep(0.05)
                [(tid, _)] = backing.pop_out(0, 1, worker_pool="w", now=1.0)
                backing.report(tid, 0, "done", now=2.0)

            threading.Thread(target=worker).start()
            t0 = time.monotonic()
            status, payload = eq.query_result(
                future.eq_task_id, delay=5.0, timeout=30.0
            )
            elapsed = time.monotonic() - t0
            assert (status, payload) == (ResultStatus.SUCCESS, "done")
            # The polling path could not return before its 5s delay tick.
            assert elapsed < PROMPT
        finally:
            backing.close()

    def test_as_completed_wakes_at_event_not_delay_tick(self):
        backing = MemoryTaskStore()
        try:
            eq = EQSQL(backing)
            futures = eq.submit_tasks(
                "e", 0, [json.dumps({"x": i}) for i in range(3)]
            )

            def worker():
                time.sleep(0.05)
                for tid, _ in backing.pop_out(0, 3, worker_pool="w", now=1.0):
                    backing.report(tid, 0, f"r{tid}", now=2.0)

            threading.Thread(target=worker).start()
            t0 = time.monotonic()
            done = list(as_completed(futures, delay=5.0, timeout=30.0))
            assert time.monotonic() - t0 < PROMPT
            assert len(done) == 3
        finally:
            backing.close()

    def test_as_completed_polling_fallback_still_drains(self):
        backing = MemoryTaskStore()
        try:
            eq = EQSQL(_PollingOnlyStore(backing))
            futures = eq.submit_tasks(
                "e", 0, [json.dumps({"x": i}) for i in range(2)]
            )

            def worker():
                time.sleep(0.05)
                for tid, _ in backing.pop_out(0, 2, worker_pool="w", now=1.0):
                    backing.report(tid, 0, f"r{tid}", now=2.0)

            threading.Thread(target=worker).start()
            done = list(as_completed(futures, delay=0.02, timeout=30.0))
            assert len(done) == 2
        finally:
            backing.close()


class TestPoolFetchWait:
    def test_negative_fetch_wait_rejected(self):
        with pytest.raises(ValueError):
            PoolConfig(work_type=0, fetch_wait=-0.1)

    @pytest.mark.parametrize("fetch_wait", [0.5, 0.0])
    def test_pool_drains_with_and_without_long_poll(self, fetch_wait):
        backing = MemoryTaskStore()
        eq = EQSQL(backing)
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: {"y": d["x"] + 1}),
            PoolConfig(
                work_type=0, n_workers=2, poll_delay=0.005,
                fetch_wait=fetch_wait,
            ),
        )
        try:
            with pool:
                future = eq.submit_task("e", 0, json.dumps({"x": 41}))
                status, payload = future.result(delay=0.02, timeout=15.0)
            assert status == ResultStatus.SUCCESS
            assert json.loads(payload) == {"y": 42}
        finally:
            backing.close()

    def test_idle_pool_dispatches_without_poll_delay_tick(self):
        """With long-poll fetch, dispatch latency is decoupled from
        ``poll_delay``: a deliberately huge poll_delay stays unused."""
        backing = MemoryTaskStore()
        eq = EQSQL(backing)
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: {"y": d["x"]}),
            PoolConfig(work_type=0, n_workers=1, poll_delay=30.0),
        )
        try:
            with pool:
                time.sleep(0.1)  # let the fetcher park in its long-poll
                t0 = time.monotonic()
                future = eq.submit_task("e", 0, json.dumps({"x": 7}))
                status, _ = future.result(delay=0.02, timeout=15.0)
                elapsed = time.monotonic() - t0
            assert status == ResultStatus.SUCCESS
            # A sleep-polling fetcher would not wake for 30 seconds.
            assert elapsed < PROMPT
        finally:
            backing.close()

"""Task leases: claim stamping, renewal, expiry, the reaper, heartbeats.

The lease system is the automatic half of fault tolerance: pop_out
stamps an expiry, pools heartbeat renewals, and the reaper requeues
anything whose lease lapsed.  These tests drive the store-level
semantics on both backends, the reaper under virtual and real time, and
the pool heartbeat keeping long-running tasks alive.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import EQSQL, LeaseReaper, TaskStatus, as_completed
from repro.core.recovery import reap_expired
from repro.core.service import TaskService
from repro.db import MemoryTaskStore, SqliteTaskStore
from repro.pools import PoolConfig, PythonTaskHandler, ThreadedWorkerPool
from repro.util.clock import VirtualClock


def claim(store, *, now=0.0, lease=None, pool="p"):
    tid = store.create_task("exp", 0, "payload")
    popped = store.pop_out(0, worker_pool=pool, now=now, lease=lease)
    assert [t for t, _ in popped] == [tid]
    return tid


class TestLeaseStamping:
    def test_pop_out_stamps_expiry(self, store):
        tid = claim(store, now=100.0, lease=30.0)
        row = store.get_task(tid)
        assert row.eq_status == TaskStatus.RUNNING
        assert row.lease_expiry == 130.0

    def test_pop_out_without_lease_is_unleased(self, store):
        tid = claim(store, now=100.0, lease=None)
        assert store.get_task(tid).lease_expiry is None

    def test_report_clears_lease(self, store):
        tid = claim(store, now=0.0, lease=10.0)
        store.report(tid, 0, "r", now=5.0)
        row = store.get_task(tid)
        assert row.eq_status == TaskStatus.COMPLETE
        assert row.lease_expiry is None

    def test_requeue_clears_lease(self, store):
        tid = claim(store, now=0.0, lease=10.0)
        assert store.requeue(tid)
        row = store.get_task(tid)
        assert row.eq_status == TaskStatus.QUEUED
        assert row.lease_expiry is None


class TestRenewLeases:
    def test_renewal_extends_expiry(self, store):
        tid = claim(store, now=0.0, lease=10.0)
        assert store.renew_leases([tid], now=8.0, lease=10.0) == 1
        assert store.get_task(tid).lease_expiry == 18.0
        # The renewed lease survives its original expiry...
        assert store.requeue_expired(now=15.0) == []
        # ...but not its renewed one.
        assert store.requeue_expired(now=18.0) == [tid]

    def test_renewal_skips_non_running(self, store):
        done = claim(store, now=0.0, lease=10.0)
        store.report(done, 0, "r")
        queued = store.create_task("exp", 0, "q")
        assert store.renew_leases([queued, done], now=1.0, lease=10.0) == 0
        assert store.get_task(queued).lease_expiry is None

    def test_renewal_ignores_unknown_ids(self, store):
        tid = claim(store, now=0.0, lease=10.0)
        assert store.renew_leases([tid, 9999], now=1.0, lease=10.0) == 1


class TestRequeueExpired:
    def test_requeues_only_expired(self, store):
        expired = claim(store, now=0.0, lease=5.0, pool="a")
        live = claim(store, now=0.0, lease=60.0, pool="b")
        unleased = claim(store, now=0.0, lease=None, pool="c")
        assert store.requeue_expired(now=10.0) == [expired]
        assert store.get_task(expired).eq_status == TaskStatus.QUEUED
        assert store.get_task(live).eq_status == TaskStatus.RUNNING
        # Unleased claims are never reaped — that's the manual-recovery
        # regime (recover_pool), preserved for pools that opt out.
        assert store.get_task(unleased).eq_status == TaskStatus.RUNNING

    def test_requeued_task_is_reclaimable(self, store):
        tid = claim(store, now=0.0, lease=5.0, pool="dead")
        store.requeue_expired(now=10.0)
        popped = store.pop_out(0, worker_pool="alive", now=11.0, lease=5.0)
        assert [t for t, _ in popped] == [tid]
        row = store.get_task(tid)
        assert row.worker_pool == "alive"
        assert row.lease_expiry == 16.0

    def test_requeue_priority(self, store):
        tid = claim(store, now=0.0, lease=5.0)
        store.requeue_expired(now=10.0, priority=7)
        assert dict(store.get_priorities([tid])) == {tid: 7}

    def test_report_after_requeue_withdraws_queued_copy(self, store):
        # The lease lapsed on a pool that was slow, not dead: its report
        # lands after the reaper requeued the task.  The report must win
        # — task COMPLETE, one result, and the queued copy withdrawn so
        # no other pool re-claims a completed task.
        tid = claim(store, now=0.0, lease=5.0, pool="slow")
        assert store.requeue_expired(now=10.0) == [tid]
        store.report(tid, 0, "late-result", now=11.0)
        assert store.get_task(tid).eq_status == TaskStatus.COMPLETE
        assert store.queue_out_length(0) == 0
        assert store.pop_out(0, now=12.0) == []
        assert store.pop_in(tid) == "late-result"
        assert store.queue_in_length() == 0

    def test_duplicate_report_after_requeue_and_reexecution(self, store):
        # Slower variant: the task was requeued, re-executed, and
        # reported by the second pool — then the first pool's stale
        # report finally arrives.  First write wins; one result.
        tid = claim(store, now=0.0, lease=5.0, pool="slow")
        store.requeue_expired(now=10.0)
        store.pop_out(0, worker_pool="second", now=11.0, lease=5.0)
        store.report(tid, 0, "second-result", now=12.0)
        store.report(tid, 0, "stale-result", now=13.0)
        assert store.pop_in_any([tid]) == [(tid, "second-result")]
        assert store.queue_in_length() == 0


class TestConcurrentReportVsRequeue:
    def test_report_racing_requeue_never_loses_the_result(self, store):
        # Satellite (b): whatever the interleaving, once report lands
        # the task is COMPLETE with exactly one result and nothing left
        # to re-claim.  requeue() atomically refuses non-RUNNING rows,
        # and report withdraws a requeued copy.
        for _ in range(100):
            tid = claim(store, now=0.0, lease=1.0)
            barrier = threading.Barrier(2)
            errors = []

            def reporter():
                barrier.wait()
                try:
                    store.report(tid, 0, "result", now=2.0)
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            def requeuer():
                barrier.wait()
                try:
                    store.requeue_expired(now=2.0)
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=reporter),
                threading.Thread(target=requeuer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert store.get_task(tid).eq_status == TaskStatus.COMPLETE
            assert store.pop_in(tid) == "result"
            assert store.pop_out(0, now=3.0) == []
            assert store.queue_in_length() == 0


class TestLeaseReaper:
    def test_run_once_under_virtual_clock(self):
        store = MemoryTaskStore()
        clock = VirtualClock()
        reaper = LeaseReaper(store, clock=clock, interval=1.0)
        tid = claim(store, now=0.0, lease=10.0)
        assert reaper.run_once() == []
        clock.advance(11.0)
        assert reaper.run_once() == [tid]
        assert store.get_task(tid).eq_status == TaskStatus.QUEUED
        store.close()

    def test_reap_expired_via_eqsql(self):
        clock = VirtualClock()
        eq = EQSQL(MemoryTaskStore(), clock=clock)
        future = eq.submit_task("exp", 0, "p")
        eq.query_task(0, timeout=0, lease=10.0)
        clock.advance(11.0)
        assert reap_expired(eq) == [future.eq_task_id]
        eq.close()

    def test_interval_must_be_positive(self):
        store = MemoryTaskStore()
        with pytest.raises(ValueError):
            LeaseReaper(store, interval=0.0)
        store.close()

    def test_threaded_reaper_requeues_in_background(self):
        store = MemoryTaskStore()
        tid = claim(store, now=0.0, lease=0.05)
        with LeaseReaper(store, interval=0.02):
            deadline = time.monotonic() + 5.0
            while store.get_task(tid).eq_status != TaskStatus.QUEUED:
                assert time.monotonic() < deadline, "reaper never requeued"
                time.sleep(0.01)
        store.close()

    def test_service_embedded_reaper(self):
        backing = MemoryTaskStore()
        service = TaskService(backing, lease_reaper_interval=0.02).start()
        try:
            assert service.lease_reaper is not None
            tid = claim(backing, now=0.0, lease=0.05)
            deadline = time.monotonic() + 5.0
            while backing.get_task(tid).eq_status != TaskStatus.QUEUED:
                assert time.monotonic() < deadline, "service reaper never swept"
                time.sleep(0.01)
        finally:
            service.stop()
            backing.close()

    def test_service_without_interval_has_no_reaper(self):
        backing = MemoryTaskStore()
        service = TaskService(backing).start()
        try:
            assert service.lease_reaper is None
        finally:
            service.stop()
            backing.close()


def _count_calls(fn, counter, lock):
    def wrapped(params):
        with lock:
            counter.append(1)
        return fn(params)

    return wrapped


class TestPoolHeartbeat:
    def test_heartbeat_keeps_long_tasks_alive(self):
        # Tasks run for several lease lifetimes; the heartbeat must keep
        # renewing so the reaper never requeues (each task executes once).
        eq = EQSQL(MemoryTaskStore())
        calls: list[int] = []
        lock = threading.Lock()

        def slow_square(d):
            time.sleep(0.4)
            return {"y": d["x"] ** 2}

        futures = eq.submit_tasks(
            "exp", 0, [json.dumps({"x": i}) for i in range(2)]
        )
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(_count_calls(slow_square, calls, lock)),
            PoolConfig(
                work_type=0, n_workers=2, name="leased",
                lease_duration=0.15, heartbeat_interval=0.05,
            ),
        )
        with LeaseReaper(eq.store, interval=0.03), pool:
            done = list(as_completed(futures, timeout=20, delay=0.01))
        assert len(done) == 2
        assert len(calls) == 2, "a live task was requeued and re-executed"
        assert pool.tasks_completed == 2
        eq.close()

    def test_dead_pool_tasks_reaped_and_finished_elsewhere(self):
        # A leased pool claims more than it can run and dies without
        # draining; the reaper requeues the abandoned claims and a
        # replacement completes everything — no recover_pool call.
        eq = EQSQL(MemoryTaskStore())

        def slow(d):
            time.sleep(0.1)
            return {"y": d["x"]}

        futures = eq.submit_tasks(
            "exp", 0, [json.dumps({"x": i}) for i in range(8)]
        )
        doomed = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(slow),
            PoolConfig(
                work_type=0, n_workers=2, batch_size=6, name="doomed",
                lease_duration=0.2,
            ),
        ).start()
        while doomed.owned() == 0:
            time.sleep(0.005)
        doomed.stop(drain=False, timeout=10)

        replacement = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: {"y": d["x"]}),
            PoolConfig(work_type=0, n_workers=4, name="replacement"),
        )
        with LeaseReaper(eq.store, interval=0.05), replacement:
            done = list(as_completed(futures, timeout=20, delay=0.01))
        assert len(done) == 8
        eq.close()

    def test_renew_leases_without_lease_config_is_noop(self):
        eq = EQSQL(MemoryTaskStore())
        pool = ThreadedWorkerPool(
            eq,
            PythonTaskHandler(lambda d: d),
            PoolConfig(work_type=0, n_workers=1, name="unleased"),
        )
        assert pool.renew_leases() == 0
        eq.close()

    def test_heartbeat_config_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(work_type=0, heartbeat_interval=1.0)  # no lease
        with pytest.raises(ValueError):
            PoolConfig(work_type=0, lease_duration=1.0, heartbeat_interval=2.0)
        with pytest.raises(ValueError):
            PoolConfig(work_type=0, lease_duration=-1.0)
        config = PoolConfig(work_type=0, lease_duration=3.0)
        assert config.heartbeat_interval == 1.0


class TestLeaseDurability:
    def test_lease_survives_sqlite_reopen(self, tmp_path):
        # A durable store carries leases across a 'restart': the reaper
        # on the reopened store still recovers the in-flight claim.
        path = str(tmp_path / "emews.db")
        store = SqliteTaskStore(path)
        tid = claim(store, now=0.0, lease=5.0)
        store.close()
        reopened = SqliteTaskStore(path)
        assert reopened.get_task(tid).lease_expiry == 5.0
        assert reopened.requeue_expired(now=10.0) == [tid]
        reopened.close()

"""Tests for the R-style asynchronous API extensions (§VII future work)."""

from __future__ import annotations

import pytest

from repro.core import rapi


@pytest.fixture(autouse=True)
def fresh_connection():
    rapi.eq_shutdown()
    rapi.eq_init()
    yield
    rapi.eq_shutdown(close=True)


def submit(n, priority=0):
    return [rapi.eq_submit_task("exp", 0, f"p{i}", priority=priority) for i in range(n)]


def run_one():
    work = rapi.eq_query_task(0, timeout=0)
    assert work["type"] == "work"
    rapi.eq_report_task(work["eq_task_id"], 0, f"r{work['eq_task_id']}")
    return work["eq_task_id"]


class TestAsCompleted:
    def test_collects_completed(self):
        ids = submit(3)
        done = [run_one(), run_one()]
        results = rapi.eq_as_completed(ids, timeout=0)
        assert [r["eq_task_id"] for r in results] == done
        assert all(r["type"] == "result" for r in results)

    def test_n_limits_collection(self):
        ids = submit(3)
        for _ in range(3):
            run_one()
        results = rapi.eq_as_completed(ids, n=2, timeout=0)
        assert len(results) == 2
        # The rest remain poppable later.
        rest = rapi.eq_as_completed(ids, timeout=0)
        assert len(rest) == 1

    def test_timeout_returns_partial(self):
        ids = submit(2)
        run_one()
        results = rapi.eq_as_completed(ids, timeout=0)
        assert len(results) == 1

    def test_duplicate_ids_deduped(self):
        ids = submit(1)
        run_one()
        results = rapi.eq_as_completed(ids + ids, timeout=0)
        assert len(results) == 1


class TestPopCompleted:
    def test_returns_first_completed(self):
        ids = submit(2)
        done = run_one()
        result = rapi.eq_pop_completed(ids, timeout=0)
        assert result == {"type": "result", "eq_task_id": done, "payload": f"r{done}"}

    def test_timeout_status(self):
        ids = submit(1)
        assert rapi.eq_pop_completed(ids, timeout=0) == {
            "type": "status",
            "payload": "TIMEOUT",
        }


class TestPriorityAndCancel:
    def test_update_priority_scalar_and_vector(self):
        ids = submit(3)
        assert rapi.eq_update_priority(ids, 5) == 3
        assert rapi.eq_update_priority(ids, [3, 2, 1]) == 3
        # Highest priority pops first.
        work = rapi.eq_query_task(0, timeout=0)
        assert work["eq_task_id"] == ids[0]

    def test_cancel(self):
        ids = submit(2)
        assert rapi.eq_cancel_tasks([ids[0]]) == 1
        statuses = {s["eq_task_id"]: s["status"] for s in rapi.eq_query_status(ids)}
        assert statuses[ids[0]] == "canceled"
        assert statuses[ids[1]] == "queued"

    def test_query_status_labels(self):
        ids = submit(1)
        run_one()
        (status,) = rapi.eq_query_status(ids)
        assert status == {"eq_task_id": ids[0], "status": "complete"}

"""Tests for trace-context propagation along the task payload path."""

from __future__ import annotations

import json

import pytest

from repro.core.eqsql import init_eqsql
from repro.core.task import (
    TRACE_KEY,
    TaskRecord,
    record_from_message,
    unwrap_payload,
    wrap_payload,
)
from repro.telemetry.tracing import SpanContext, Tracer
from repro.util.clock import SystemClock


class TestEnvelope:
    def test_round_trip(self):
        ctx = SpanContext("trace-1", "span-1")
        payload = json.dumps({"x": 3})
        inner, restored = unwrap_payload(wrap_payload(payload, ctx))
        assert inner == payload
        assert restored == ctx

    def test_plain_payload_passes_through(self):
        for payload in ('{"x": 1}', "EQ_STOP", "", "plain text"):
            assert unwrap_payload(payload) == (payload, None)

    def test_envelope_lookalike_not_corrupted(self):
        # A payload starting with the marker but not parseable as an
        # envelope must come back byte-identical.
        lookalike = '{"' + TRACE_KEY + '": "not json...'
        assert unwrap_payload(lookalike) == (lookalike, None)

    def test_envelope_with_non_string_inner_untouched(self):
        weird = json.dumps({TRACE_KEY: ["a", "b"], "p": 42})
        assert unwrap_payload(weird) == (weird, None)

    def test_envelope_with_bad_context_still_unwraps(self):
        enveloped = json.dumps({TRACE_KEY: ["only-one"], "p": "data"})
        inner, ctx = unwrap_payload(enveloped)
        assert inner == "data"
        assert ctx is None

    def test_wrap_emits_marker_first(self):
        # The unwrap fast path depends on the marker being the literal
        # prefix of the envelope string.
        enveloped = wrap_payload("x", SpanContext("t", "s"))
        assert enveloped.startswith('{"' + TRACE_KEY + '"')


class TestRecordFromMessage:
    def test_with_trace(self):
        message = {"eq_task_id": 5, "payload": "data", "trace": ["t", "s"]}
        record = record_from_message(message, eq_type=2)
        assert record == TaskRecord(5, 2, "data", SpanContext("t", "s"))

    def test_without_trace(self):
        record = record_from_message({"eq_task_id": 1, "payload": "p"}, eq_type=0)
        assert record.trace is None


class TestEqsqlPropagation:
    def test_disabled_tracer_leaves_payload_bare(self):
        eq = init_eqsql()
        future = eq.submit_task("exp", 0, '{"x": 1}')
        row = eq.task_info(future.eq_task_id)
        assert row.json_out == '{"x": 1}'
        message = eq.query_task(0, timeout=0)
        assert message["payload"] == '{"x": 1}'
        assert "trace" not in message
        eq.close()

    def test_enabled_tracer_wraps_and_unwraps(self):
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(tracer=tracer)
        with tracer.span("driver.run", component="driver") as root:
            future = eq.submit_task("exp", 0, '{"x": 1}')
        # The stored payload is the envelope (context rides in the DB)…
        stored = eq.task_info(future.eq_task_id).json_out
        assert stored.startswith('{"' + TRACE_KEY + '"')
        # …but consumers get the original payload plus the wire context.
        message = eq.query_task(0, timeout=0)
        assert message["payload"] == '{"x": 1}'
        ctx = SpanContext.from_wire(message["trace"])
        assert ctx is not None
        assert ctx.trace_id == root.trace_id
        eq.close()

    def test_submit_span_is_the_message_parent(self):
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(tracer=tracer)
        eq.submit_task("exp", 0, "payload")
        (submit_span,) = [s for s in tracer.spans() if s.name == "eqsql.submit"]
        message = eq.query_task(0, timeout=0)
        assert message["trace"] == [submit_span.trace_id, submit_span.span_id]
        eq.close()

    def test_batch_submission_shares_one_context(self):
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(tracer=tracer)
        eq.submit_tasks("exp", 0, ["a", "b", "c"])
        messages = eq.query_task(0, n=3, timeout=0)
        contexts = {tuple(m["trace"]) for m in messages}
        assert len(contexts) == 1
        assert {m["payload"] for m in messages} == {"a", "b", "c"}
        eq.close()

    def test_sqlite_round_trip(self, tmp_path):
        # The envelope is just payload bytes: it must survive a real
        # file-backed store identically.
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(str(tmp_path / "tasks.db"), tracer=tracer)
        eq.submit_task("exp", 0, '{"deep": {"nested": [1, 2]}}')
        message = eq.query_task(0, timeout=0)
        assert json.loads(message["payload"]) == {"deep": {"nested": [1, 2]}}
        assert SpanContext.from_wire(message["trace"]) is not None
        eq.close()

    def test_report_and_result_unaffected(self):
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(tracer=tracer)
        future = eq.submit_task("exp", 0, "in")
        message = eq.query_task(0, timeout=0)
        eq.report_task(message["eq_task_id"], 0, "out")
        status, result = future.result(timeout=1)
        assert result == "out"
        eq.close()

    def test_priority_ops_traced(self):
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(tracer=tracer)
        futures = eq.submit_tasks("exp", 0, ["a", "b"])
        ids = [f.eq_task_id for f in futures]
        eq.update_priorities(ids, 5)
        eq.cancel_tasks(ids)
        names = {s.name for s in tracer.spans()}
        assert "eqsql.update_priorities" in names
        assert "eqsql.cancel" in names
        eq.close()

    @pytest.mark.parametrize("payload", ["EQ_STOP", "EQ_ABORT"])
    def test_sentinels_never_wrapped(self, payload):
        # Pools compare the fetched payload against the sentinel string;
        # wrapping would break shutdown.  Sentinels are submitted like
        # any payload, so this documents that unwrapping restores them.
        tracer = Tracer(clock=SystemClock())
        eq = init_eqsql(tracer=tracer)
        eq.submit_task("exp", 0, payload)
        message = eq.query_task(0, timeout=0)
        assert message["payload"] == payload
        eq.close()

"""Tests for the EMEWS service and remote task store.

These exercise the real TCP path on localhost: the same EQSQL API the
paper's ME algorithm uses through its SSH tunnel to the remote service.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import EQSQL, ResultStatus, TaskService, RemoteTaskStore
from repro.core.protocol import task_row_from_dict, task_row_to_dict
from repro.db import MemoryTaskStore
from repro.db.schema import TaskRow, TaskStatus
from repro.util.errors import AuthenticationError, NotFoundError


@pytest.fixture
def service():
    backing = MemoryTaskStore()
    svc = TaskService(backing, auth_token="tok").start()
    yield svc
    svc.stop()
    backing.close()


@pytest.fixture
def remote(service):
    host, port = service.address
    store = RemoteTaskStore(host, port, auth_token="tok")
    yield store
    store.close()


class TestAuth:
    def test_bad_token_rejected(self, service):
        host, port = service.address
        with pytest.raises(AuthenticationError):
            RemoteTaskStore(host, port, auth_token="wrong")

    def test_missing_token_rejected(self, service):
        host, port = service.address
        with pytest.raises(AuthenticationError):
            RemoteTaskStore(host, port)

    def test_no_token_service_accepts_anyone(self):
        backing = MemoryTaskStore()
        with TaskService(backing) as svc:
            host, port = svc.address
            store = RemoteTaskStore(host, port)
            assert store.create_task("e", 0, "p") == 1
            store.close()
        backing.close()


class TestRemoteStore:
    def test_full_task_round_trip(self, remote):
        eq = EQSQL(remote)
        future = eq.submit_task("exp", 3, '{"x": 1}', priority=2, tag="t")
        message = eq.query_task(3, worker_pool="wp", timeout=0)
        assert message["eq_task_id"] == future.eq_task_id
        eq.report_task(future.eq_task_id, 3, '{"y": 2}')
        assert future.result(timeout=0) == (ResultStatus.SUCCESS, '{"y": 2}')

    def test_get_task_row(self, remote):
        tid = remote.create_task("exp", 1, "payload", tag="tag-a", time_created=5.0)
        row = remote.get_task(tid)
        assert row.eq_task_id == tid
        assert row.eq_task_type == 1
        assert row.eq_status == TaskStatus.QUEUED
        assert row.json_out == "payload"
        assert row.time_created == 5.0
        assert row.tags == ["tag-a"]

    def test_get_task_not_found(self, remote):
        with pytest.raises(NotFoundError):
            remote.get_task(999)

    def test_batch_operations(self, remote):
        ids = remote.create_tasks("e", 0, ["a", "b", "c"], priority=[1, 2, 3])
        assert remote.update_priorities(ids, [9, 8, 7]) == 3
        assert dict(remote.get_priorities(ids)) == {ids[0]: 9, ids[1]: 8, ids[2]: 7}
        assert remote.cancel_tasks([ids[2]]) == 1
        popped = remote.pop_out(0, 5)
        assert [t for t, _ in popped] == [ids[0], ids[1]]
        for tid in (ids[0], ids[1]):
            remote.report(tid, 0, f"r{tid}")
        assert dict(remote.pop_in_any(ids)) == {ids[0]: f"r{ids[0]}", ids[1]: f"r{ids[1]}"}

    def test_experiment_and_tag_queries(self, remote):
        a = remote.create_task("exp-x", 0, "p", tag="t1")
        b = remote.create_task("exp-x", 0, "p")
        assert remote.tasks_for_experiment("exp-x") == [a, b]
        assert remote.tasks_for_tag("t1") == [a]

    def test_queue_lengths_and_maintenance(self, remote):
        remote.create_tasks("e", 0, ["a", "b"])
        assert remote.queue_out_length() == 2
        assert remote.queue_out_length(0) == 2
        assert remote.queue_in_length() == 0
        assert remote.max_task_id() == 2
        remote.clear()
        assert remote.queue_out_length() == 0

    def test_statuses_round_trip(self, remote):
        ids = remote.create_tasks("e", 0, ["a", "b"])
        remote.pop_out(0, 1)
        statuses = dict(remote.get_statuses(ids))
        assert statuses[ids[0]] == TaskStatus.RUNNING
        assert statuses[ids[1]] == TaskStatus.QUEUED


class TestConcurrentClients:
    def test_two_clients_share_one_queue(self, service):
        host, port = service.address
        a = RemoteTaskStore(host, port, auth_token="tok")
        b = RemoteTaskStore(host, port, auth_token="tok")
        a.create_tasks("e", 0, [f"p{i}" for i in range(50)])
        popped: list[int] = []
        lock = threading.Lock()

        def drain(store):
            while True:
                got = store.pop_out(0, 3)
                if not got:
                    break
                with lock:
                    popped.extend(t for t, _ in got)

        threads = [threading.Thread(target=drain, args=(s,)) for s in (a, b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(popped) == list(range(1, 51))
        a.close()
        b.close()


class TestProtocol:
    def test_task_row_round_trip(self):
        row = TaskRow(
            eq_task_id=7,
            eq_task_type=2,
            eq_status=TaskStatus.COMPLETE,
            worker_pool="wp",
            json_out="out",
            json_in="in",
            time_created=1.0,
            time_start=2.0,
            time_stop=3.0,
            tags=["a", "b"],
        )
        assert task_row_from_dict(task_row_to_dict(row)) == row

    def test_unknown_method_is_error(self, remote):
        with pytest.raises(Exception):
            remote._call("no_such_method", {})

    def test_ping(self, remote):
        assert remote._call("ping", {})["version"] == 1

"""Pipelined RPC mode: batching, id matching, and break semantics.

The pipeline must be semantically transparent — every call resolves to
exactly what its lockstep twin would have produced — while collapsing N
round trips into one.  Under chaos it must preserve the PR 2 contract:
idempotent calls are replayed after a mid-pipeline break; non-idempotent
in-flight calls surface ``ConnectionBrokenError`` exactly once.
"""

from __future__ import annotations

import random

import pytest

from repro.core import RemoteTaskStore, TaskService
from repro.core.service_client import RetryPolicy
from repro.db import MemoryTaskStore
from repro.telemetry.metrics import MetricsRegistry
from repro.testing import ChaosProxy
from repro.util.errors import (
    ConnectionBrokenError,
    NotFoundError,
    ServiceUnavailableError,
)

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.05)


@pytest.fixture
def service():
    backing = MemoryTaskStore()
    svc = TaskService(backing).start()
    yield svc
    svc.stop()
    backing.close()


@pytest.fixture
def client(service):
    metrics = MetricsRegistry()
    store = RemoteTaskStore(*service.address, metrics=metrics)
    store.test_metrics = metrics
    yield store
    store.close()


@pytest.fixture
def proxy(service):
    with ChaosProxy(*service.address, rng=random.Random(7)) as p:
        yield p


@pytest.fixture
def chaos_client(proxy):
    metrics = MetricsRegistry()
    store = RemoteTaskStore(
        *proxy.address, retry=FAST_RETRY, metrics=metrics, rng=random.Random(7)
    )
    store.test_metrics = metrics
    yield store
    store.close()


class TestPipelineHappyPath:
    def test_results_match_lockstep(self, client):
        ids = client.create_tasks("exp", 0, [f"p{i}" for i in range(10)])
        popped = client.pop_out(0, n=10)
        assert len(popped) == 10
        with client.pipeline() as pipe:
            calls = [
                pipe.call(
                    "report",
                    {"eq_task_id": tid, "eq_type": 0, "result": f"r{tid}"},
                )
                for tid, _payload in popped
            ]
        assert all(c.result() is None for c in calls)
        for tid in ids:
            assert client.pop_in(tid) == f"r{tid}"

    def test_single_flush_resolves_all(self, client):
        with client.pipeline(max_in_flight=64) as pipe:
            calls = [pipe.call("queue_in_length", {}) for _ in range(20)]
            assert not any(c.done for c in calls)
            pipe.flush()
            assert all(c.done for c in calls)
        assert [c.result() for c in calls] == [0] * 20
        flushes = client.test_metrics.get("service.client.pipeline_flushes")
        assert flushes.value == 1

    def test_auto_flush_at_max_in_flight(self, client):
        with client.pipeline(max_in_flight=4) as pipe:
            calls = [pipe.call("queue_out_length", {"eq_type": None}) for _ in range(4)]
            # The 4th call crossed the threshold: flushed without help.
            assert all(c.done for c in calls)

    def test_context_exit_flushes_remainder(self, client):
        pipe = client.pipeline(max_in_flight=64)
        with pipe:
            call = pipe.call("max_task_id", {})
        assert call.result() == 0

    def test_unflushed_result_raises(self, client):
        pipe = client.pipeline()
        call = pipe.call("queue_in_length", {})
        with pytest.raises(RuntimeError, match="not been flushed"):
            call.result()
        pipe.flush()
        assert call.result() == 0

    def test_typed_error_resolves_only_its_call(self, client):
        tid = client.create_task("exp", 0, "p")
        with client.pipeline() as pipe:
            good = pipe.call("get_task", {"eq_task_id": tid})
            bad = pipe.call("get_task", {"eq_task_id": 9999})
            also_good = pipe.call("queue_out_length", {"eq_type": None})
        # The server answered all three; only the missing id fails, and
        # with the same typed error a lockstep call raises.
        assert good.result()["eq_task_id"] == tid
        with pytest.raises(NotFoundError):
            bad.result()
        assert also_good.result() == 1

    def test_interleaves_with_lockstep_calls(self, client):
        pipe = client.pipeline(max_in_flight=64)
        pipe.call("queue_in_length", {})
        # A lockstep call between pipeline calls must not steal the
        # pipelined responses (ids keep requests and responses paired).
        assert client.max_task_id() == 0
        call = pipe.call("queue_out_length", {"eq_type": None})
        pipe.flush()
        assert call.result() == 0

    def test_rejects_bad_max_in_flight(self, client):
        with pytest.raises(ValueError):
            client.pipeline(max_in_flight=0)

    def test_exception_in_body_abandons_batch(self, client):
        with pytest.raises(RuntimeError, match="boom"):
            with client.pipeline() as pipe:
                call = pipe.call("queue_in_length", {})
                raise RuntimeError("boom")
        assert not call.done  # never flushed; results were abandoned


class TestPipelineChaos:
    def test_sever_mid_pipeline_idempotent_calls_replay(
        self, proxy, chaos_client
    ):
        chaos_client.create_task("exp", 0, "p")
        assert proxy.sever_all() >= 1
        with chaos_client.pipeline() as pipe:
            calls = [
                pipe.call("queue_out_length", {"eq_type": None})
                for _ in range(5)
            ]
        # Every call was replayed on a fresh connection.
        assert [c.result() for c in calls] == [1] * 5
        assert (
            chaos_client.test_metrics.get("service.client.reconnects").value >= 1
        )

    def test_sever_mid_pipeline_non_idempotent_breaks_exactly_once(
        self, proxy, chaos_client
    ):
        proxy.sever_all()  # the client now holds a dead socket
        with chaos_client.pipeline() as pipe:
            idem = pipe.call("queue_out_length", {"eq_type": None})
            non_idem = pipe.call(
                "create_task", {"exp_id": "exp", "eq_type": 0, "payload": "p"}
            )
        # The idempotent call replayed; the non-idempotent one must
        # surface ConnectionBrokenError — once per result() call, the
        # same stored error, never a re-send.
        assert idem.result() == 0
        with pytest.raises(ConnectionBrokenError):
            non_idem.result()
        with pytest.raises(ConnectionBrokenError):
            non_idem.result()  # same stored error; nothing re-executed
        # The request never went out through the dead socket.
        assert chaos_client.queue_out_length(None) == 0
        # The client is healthy for the caller's own retry.
        assert chaos_client.create_task("exp", 0, "p2") >= 1

    def test_full_outage_mid_pipeline_exhausts_retries(
        self, proxy, chaos_client
    ):
        chaos_client.queue_in_length()  # establish through the proxy
        proxy.pause()  # refuse new connections ...
        proxy.sever_all()  # ... and kill the existing one
        with chaos_client.pipeline() as pipe:
            idem = pipe.call("queue_in_length", {})
            non_idem = pipe.call(
                "create_task", {"exp_id": "exp", "eq_type": 0, "payload": "p"}
            )
        # Idempotent: replayed until the retry budget ran out.
        with pytest.raises(ServiceUnavailableError):
            idem.result()
        with pytest.raises(ConnectionBrokenError):
            non_idem.result()
        # Outage ends; the same client recovers.
        proxy.resume()
        assert chaos_client.queue_in_length() == 0

    def test_connect_failure_replays_everything(self, proxy, chaos_client):
        # Tear the connection down *and* make the first reconnect fail:
        # the flush's own connect attempt fails pre-send, so even
        # non-idempotent calls are provably unapplied and replay.
        proxy.sever_all()
        chaos_client._teardown_locked()  # no socket held at flush time
        proxy.pause()

        import threading
        import time

        def lift_outage():
            time.sleep(0.05)
            proxy.resume()

        threading.Thread(target=lift_outage, daemon=True).start()
        with chaos_client.pipeline() as pipe:
            non_idem = pipe.call(
                "create_task", {"exp_id": "exp", "eq_type": 0, "payload": "p"}
            )
        assert non_idem.result() >= 1
        assert chaos_client.queue_out_length(None) == 1

"""Tests for the command-line interface (reduced task counts)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3", "--tasks", "120"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "batch=50 threshold=1" in out
        assert "utilization" in out
        assert "█" in out  # the concurrency chart rendered

    def test_fig4_small(self, capsys):
        # At reduced scale later pools may still be queued when the
        # workload drains; pool-1 and the repri table must always show.
        assert main(["fig4", "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "pool-1" in out
        assert "reprioritized" in out

    def test_fig4_full_scale_shows_all_pools(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "pool-1" in out and "pool-2" in out and "pool-3" in out

    def test_sweep_batch(self, capsys):
        assert main(["sweep-batch", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "cache surplus" in out

    def test_sweep_threshold(self, capsys):
        assert main(["sweep-threshold", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "dip_depth" in out

    def test_gpr_ablation(self, capsys):
        assert main(["gpr-ablation", "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "best-so-far (GPR)" in out
        assert "repri count" in out

    def test_seed_changes_output(self, capsys):
        main(["fig4", "--tasks", "120", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig4", "--tasks", "120", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        spans_path = tmp_path / "spans.jsonl"
        assert main(
            ["trace", "--tasks", "8", "--out", str(out_path),
             "--spans", str(spans_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "chrome trace" in out
        assert "latency breakdown" in out
        document = json.loads(out_path.read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        components = {e["cat"] for e in events}
        # The acceptance bar: the pipeline's major hops all appear.
        assert {"driver", "eqsql", "service", "pool", "handler"} <= components
        # Every parent reference resolves within the trace.
        span_ids = {e["args"]["span_id"] for e in events}
        for event in events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in span_ids
        assert spans_path.exists()

    def test_trace_restores_global_tracer(self):
        from repro.telemetry.tracing import get_tracer

        before = get_tracer()
        main(["trace", "--tasks", "4", "--out", "/dev/null"])
        assert get_tracer() is before

    def test_metrics_prints_registry(self, capsys):
        assert main(["metrics", "--tasks", "8"]) == 0
        out = capsys.readouterr().out
        assert "pool.tasks_completed: 8" in out
        assert "service.client.rtt_seconds" in out
        assert "eqsql.tasks_submitted" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

"""Tests for the command-line interface (reduced task counts)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3", "--tasks", "120"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "batch=50 threshold=1" in out
        assert "utilization" in out
        assert "█" in out  # the concurrency chart rendered

    def test_fig4_small(self, capsys):
        # At reduced scale later pools may still be queued when the
        # workload drains; pool-1 and the repri table must always show.
        assert main(["fig4", "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "pool-1" in out
        assert "reprioritized" in out

    def test_fig4_full_scale_shows_all_pools(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "pool-1" in out and "pool-2" in out and "pool-3" in out

    def test_sweep_batch(self, capsys):
        assert main(["sweep-batch", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "cache surplus" in out

    def test_sweep_threshold(self, capsys):
        assert main(["sweep-threshold", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "dip_depth" in out

    def test_gpr_ablation(self, capsys):
        assert main(["gpr-ablation", "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "best-so-far (GPR)" in out
        assert "repri count" in out

    def test_seed_changes_output(self, capsys):
        main(["fig4", "--tasks", "120", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig4", "--tasks", "120", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        spans_path = tmp_path / "spans.jsonl"
        assert main(
            ["trace", "--tasks", "8", "--out", str(out_path),
             "--spans", str(spans_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "chrome trace" in out
        assert "latency breakdown" in out
        document = json.loads(out_path.read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        components = {e["cat"] for e in events}
        # The acceptance bar: the pipeline's major hops all appear.
        assert {"driver", "eqsql", "service", "pool", "handler"} <= components
        # Every parent reference resolves within the trace.
        span_ids = {e["args"]["span_id"] for e in events}
        for event in events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in span_ids
        assert spans_path.exists()

    def test_trace_restores_global_tracer(self):
        from repro.telemetry.tracing import get_tracer

        before = get_tracer()
        main(["trace", "--tasks", "4", "--out", "/dev/null"])
        assert get_tracer() is before

    def test_metrics_prints_registry(self, capsys):
        assert main(["metrics", "--tasks", "8"]) == 0
        out = capsys.readouterr().out
        assert "pool.tasks_completed: 8" in out
        assert "service.client.rtt_seconds" in out
        assert "eqsql.tasks_submitted" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestTimelineCommand:
    def _write_journal(self, tmp_path, name, records):
        import json

        path = tmp_path / name
        path.write_text(
            "".join(json.dumps(r.to_dict()) + "\n" for r in records)
        )
        return str(path)

    def test_merges_multi_role_journals(self, capsys, tmp_path):
        from repro.telemetry.journal import (
            EV_ENQUEUE,
            EV_FETCH,
            EV_POP,
            EV_REPORT,
            ROLE_DB,
            ROLE_POOL,
            JournalRecord,
        )

        db = self._write_journal(
            tmp_path,
            "db.jsonl",
            [
                JournalRecord(1, 0.0, ROLE_DB, EV_ENQUEUE, 5, work_type=0),
                JournalRecord(2, 1.0, ROLE_DB, EV_POP, 5, source="p1"),
                JournalRecord(3, 3.0, ROLE_DB, EV_REPORT, 5),
            ],
        )
        pool = self._write_journal(
            tmp_path,
            "pool.jsonl",
            [JournalRecord(1, 1.5, ROLE_POOL, EV_FETCH, 5, source="p1")],
        )
        rc = main(["timeline", "5", "--journal", db, "--journal", pool])
        assert rc == 0
        out = capsys.readouterr().out
        assert "task 5: 4 lifecycle records across 2 role(s) (db, pool)" in out
        assert out.index("enqueue") < out.index("pop") < out.index("fetch")
        assert out.index("fetch") < out.index("report")

    def test_unknown_task_lists_available_ids(self, capsys, tmp_path):
        from repro.telemetry.journal import EV_ENQUEUE, ROLE_DB, JournalRecord

        path = self._write_journal(
            tmp_path,
            "db.jsonl",
            [JournalRecord(1, 0.0, ROLE_DB, EV_ENQUEUE, 3)],
        )
        rc = main(["timeline", "99", "--journal", path])
        assert rc == 1
        err = capsys.readouterr().err
        assert "no records for task 99" in err
        assert "task ids: 3" in err

    def test_missing_file_errors(self, capsys, tmp_path):
        rc = main(
            ["timeline", "1", "--journal", str(tmp_path / "absent.jsonl")]
        )
        assert rc == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_journal_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nonsense\n{}\n")
        rc = main(["timeline", "1", "--journal", str(bad)])
        assert rc == 1
        assert "malformed journal line" in capsys.readouterr().err

    def test_journal_flag_required(self):
        with pytest.raises(SystemExit):
            main(["timeline", "1"])


class TestStragglersCommand:
    def test_once_json_round_trips(self, capsys):
        import json

        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.monitor import StatusServer

        payload = {
            "journal": {"enabled": True, "total_in_ring": 0, "dropped": 0},
            "stragglers": {"active": [], "open_intervals": 0,
                           "flagged_total": 0, "baselines": {}},
        }
        server = StatusServer(
            port=0, metrics=MetricsRegistry(), events_fn=lambda: payload
        )
        with server:
            rc = main(["stragglers", server.url, "--once", "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out) == payload

    def test_unreachable_exits_nonzero(self):
        assert main(["stragglers", "127.0.0.1:1", "--once"]) == 1


class TestFleetCommand:
    def test_once_json_round_trips(self, capsys):
        import json

        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.monitor import StatusServer

        payload = {
            "counts": {"total": 0, "live": 0, "stale": 0},
            "workers": [],
            "profiles": {},
            "top_cpu": [],
        }
        server = StatusServer(
            port=0, metrics=MetricsRegistry(), fleet_fn=lambda: payload
        )
        with server:
            rc = main(["fleet", server.url, "--once", "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out) == payload

    def test_unreachable_exits_nonzero(self):
        assert main(["fleet", "127.0.0.1:1", "--once"]) == 1

"""Tests for the command-line interface (reduced task counts)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3", "--tasks", "120"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "batch=50 threshold=1" in out
        assert "utilization" in out
        assert "█" in out  # the concurrency chart rendered

    def test_fig4_small(self, capsys):
        # At reduced scale later pools may still be queued when the
        # workload drains; pool-1 and the repri table must always show.
        assert main(["fig4", "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "pool-1" in out
        assert "reprioritized" in out

    def test_fig4_full_scale_shows_all_pools(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "pool-1" in out and "pool-2" in out and "pool-3" in out

    def test_sweep_batch(self, capsys):
        assert main(["sweep-batch", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "cache surplus" in out

    def test_sweep_threshold(self, capsys):
        assert main(["sweep-threshold", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "dip_depth" in out

    def test_gpr_ablation(self, capsys):
        assert main(["gpr-ablation", "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "best-so-far (GPR)" in out
        assert "repri count" in out

    def test_seed_changes_output(self, capsys):
        main(["fig4", "--tasks", "120", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig4", "--tasks", "120", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

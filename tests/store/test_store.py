"""Tests for Store, connectors, and the registry."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.store import (
    FileConnector,
    GlobusConnector,
    MemoryConnector,
    Proxy,
    Store,
    extract,
    get_store,
    is_resolved,
    register_store,
    unregister_store,
)
from repro.transfer import TransferClient, TransferEndpoint
from repro.util.errors import NotFoundError
from repro.util.ids import short_id


@pytest.fixture
def memory_store():
    name = short_id("store")
    store = Store(name, MemoryConnector(name))
    register_store(store)
    yield store
    unregister_store(name)
    MemoryConnector.drop_space(name)


class TestConnectors:
    def test_memory_round_trip(self):
        conn = MemoryConnector(short_id("space"))
        conn.put("k", b"v")
        assert conn.get("k") == b"v"
        assert conn.exists("k")
        assert conn.evict("k")
        assert not conn.exists("k")
        assert not conn.evict("k")

    def test_memory_shared_by_name(self):
        name = short_id("space")
        a = MemoryConnector(name)
        b = MemoryConnector(name)
        a.put("k", b"v")
        assert b.get("k") == b"v"
        MemoryConnector.drop_space(name)

    def test_memory_pickles_reconnect(self):
        name = short_id("space")
        conn = MemoryConnector(name)
        conn.put("k", b"v")
        clone = pickle.loads(pickle.dumps(conn))
        assert clone.get("k") == b"v"
        MemoryConnector.drop_space(name)

    def test_memory_missing_key(self):
        with pytest.raises(NotFoundError):
            MemoryConnector(short_id("s")).get("nope")

    def test_file_round_trip(self, tmp_path):
        conn = FileConnector(tmp_path / "store")
        conn.put("some/key with spaces", b"bytes")
        assert conn.get("some/key with spaces") == b"bytes"
        assert conn.exists("some/key with spaces")
        assert conn.evict("some/key with spaces")
        assert not conn.exists("some/key with spaces")

    def test_file_pickles_by_path(self, tmp_path):
        conn = FileConnector(tmp_path)
        conn.put("k", b"v")
        clone = pickle.loads(pickle.dumps(conn))
        assert clone.get("k") == b"v"

    def test_file_missing_key(self, tmp_path):
        with pytest.raises(NotFoundError):
            FileConnector(tmp_path).get("ghost")


class TestStore:
    def test_put_get(self, memory_store):
        key = memory_store.put({"a": [1, 2]})
        assert memory_store.get(key) == {"a": [1, 2]}
        assert memory_store.exists(key)

    def test_explicit_key(self, memory_store):
        memory_store.put(42, key="answer")
        assert memory_store.get("answer") == 42

    def test_evict(self, memory_store):
        key = memory_store.put("x")
        assert memory_store.evict(key)
        with pytest.raises(NotFoundError):
            memory_store.get(key)

    def test_metrics(self, memory_store):
        key = memory_store.put(np.zeros(100))
        memory_store.get(key)
        memory_store.get(key)
        memory_store.evict(key)
        m = memory_store.metrics
        assert m.puts == 1 and m.gets == 2 and m.evicts == 1
        assert m.bytes_put > 0 and m.bytes_got == 2 * m.bytes_put

    def test_registry(self, memory_store):
        assert get_store(memory_store.name) is memory_store
        with pytest.raises(NotFoundError):
            get_store("missing-store")

    def test_duplicate_registration(self, memory_store):
        with pytest.raises(ValueError):
            register_store(memory_store)
        register_store(memory_store, replace=True)  # replace allowed


class TestStoreProxies:
    def test_proxy_round_trip(self, memory_store):
        data = {"weights": list(range(50))}
        proxy = memory_store.proxy(data)
        assert not is_resolved(proxy)
        assert proxy["weights"][0] == 0
        assert extract(proxy) == data

    def test_proxy_survives_pickle(self, memory_store):
        proxy = memory_store.proxy(np.arange(10.0))
        clone = pickle.loads(pickle.dumps(proxy))
        assert isinstance(clone, Proxy)
        assert not is_resolved(clone)
        assert float(np.sum(clone)) == 45.0

    def test_pickled_proxy_is_small(self, memory_store):
        """The whole point: proxies fit where the data would not."""
        big = np.zeros(1_000_000)  # ~8 MB
        proxy = memory_store.proxy(big)
        assert len(pickle.dumps(proxy)) < 1000

    def test_evict_on_resolve(self, memory_store):
        proxy = memory_store.proxy("one-shot", evict=True)
        key = proxy  # resolving via equality consumes the data
        assert key == "one-shot"
        # The backing entry is gone; a fresh proxy to the same key fails.
        assert memory_store.metrics.evicts == 1

    def test_proxy_from_key(self, memory_store):
        key = memory_store.put([1, 2, 3])
        proxy = memory_store.proxy_from_key(key)
        assert list(proxy) == [1, 2, 3]

    def test_unregistered_store_resolution_fails(self):
        name = short_id("gone")
        store = Store(name, MemoryConnector(name))
        register_store(store)
        proxy = store.proxy("data")
        unregister_store(name)
        with pytest.raises(NotFoundError):
            extract(proxy)
        MemoryConnector.drop_space(name)


class TestGlobusConnector:
    @pytest.fixture
    def fabric(self):
        client = TransferClient(retry_delay=0.01)
        client.register_endpoint(TransferEndpoint("site-a", bandwidth=1e9))
        client.register_endpoint(TransferEndpoint("site-b", bandwidth=1e9))
        name = short_id("fabric")
        conn_a = GlobusConnector(name, client, "site-a")
        yield name, client, conn_a
        GlobusConnector.drop_fabric(name)

    def test_local_read_no_transfer(self, fabric):
        _, client, conn_a = fabric
        conn_a.put("k", b"v")
        assert conn_a.get("k") == b"v"
        assert client.endpoint("site-b").exists("k") is False

    def test_remote_read_triggers_transfer_and_caches(self, fabric):
        _, client, conn_a = fabric
        conn_a.put("model", b"weights")
        conn_b = conn_a.at_site("site-b")
        assert conn_b.get("model") == b"weights"
        # Cached at site-b now: second read is local.
        assert client.endpoint("site-b").exists("model")

    def test_exists_sees_remote_keys(self, fabric):
        _, _, conn_a = fabric
        conn_a.put("k", b"v")
        assert conn_a.at_site("site-b").exists("k")
        assert not conn_a.at_site("site-b").exists("ghost")

    def test_evict_clears_all_sites(self, fabric):
        _, client, conn_a = fabric
        conn_a.put("k", b"v")
        conn_a.at_site("site-b").get("k")  # replicate
        assert conn_a.evict("k")
        assert not client.endpoint("site-a").exists("k")
        assert not client.endpoint("site-b").exists("k")

    def test_missing_key(self, fabric):
        _, _, conn_a = fabric
        with pytest.raises(NotFoundError):
            conn_a.get("nothing")

    def test_pickle_reconnects_to_fabric(self, fabric):
        name, _, conn_a = fabric
        conn_a.put("k", b"v")
        clone = pickle.loads(pickle.dumps(conn_a))
        assert clone.fabric_name == name
        assert clone.get("k") == b"v"

    def test_cross_site_proxy_flow(self, fabric):
        """The paper's GPR flow: proxy made at site A, resolved at B."""
        name, _, conn_a = fabric
        store_a = Store(short_id("gstore"), conn_a)
        register_store(store_a)
        try:
            model = {"kernel": "rbf", "theta": [0.1, 0.2]}
            proxy = store_a.proxy(model)
            shipped = pickle.dumps(proxy)  # rides a fabric payload
            # "At site B": re-register the name against site B's connector.
            store_b = Store(store_a.name, conn_a.at_site("site-b"))
            register_store(store_b, replace=True)
            received = pickle.loads(shipped)
            assert extract(received) == model
        finally:
            unregister_store(store_a.name)

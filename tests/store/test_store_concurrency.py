"""Concurrency tests for the data sharing service.

Stores are shared by ME algorithms, endpoints, and pools on threads;
puts, gets, and proxy resolutions must be safe under contention, and a
proxy resolved from many threads must invoke its factory exactly once
per proxy instance's first resolution (cached thereafter).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.store import MemoryConnector, Proxy, Store, extract, register_store, unregister_store
from repro.util.ids import short_id


def test_concurrent_put_get_distinct_keys():
    name = short_id("conc")
    store = Store(name, MemoryConnector(name))
    errors: list[Exception] = []

    def worker(k):
        try:
            for i in range(50):
                key = store.put({"worker": k, "i": i})
                assert store.get(key) == {"worker": k, "i": i}
                store.evict(key)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert store.metrics.puts == 400
    assert store.metrics.evicts == 400
    MemoryConnector.drop_space(name)


def test_many_threads_resolving_one_proxy():
    name = short_id("conc")
    store = Store(name, MemoryConnector(name))
    register_store(store)
    try:
        payload = np.arange(1000.0)
        proxy = store.proxy(payload)
        sums: list[float] = []
        lock = threading.Lock()

        def resolver():
            value = float(np.sum(np.asarray(extract(proxy))))
            with lock:
                sums.append(value)

        threads = [threading.Thread(target=resolver) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sums) == 12
        assert all(s == float(payload.sum()) for s in sums)
    finally:
        unregister_store(name)
        MemoryConnector.drop_space(name)


def test_counting_factory_under_contention():
    """Concurrent first-touch may race the factory, but the cached
    target must be consistent for every caller thereafter."""
    calls = {"n": 0}
    lock = threading.Lock()

    def factory():
        with lock:
            calls["n"] += 1
        return {"value": 42}

    proxy = Proxy(factory)
    results = []
    res_lock = threading.Lock()

    def touch():
        v = proxy["value"]
        with res_lock:
            results.append(v)

    threads = [threading.Thread(target=touch) for _ in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results == [42] * 10
    # After the racy first touch, everything is served from cache.
    before = calls["n"]
    for _ in range(100):
        assert proxy["value"] == 42
    assert calls["n"] == before

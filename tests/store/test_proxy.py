"""Tests for the transparent lazy proxy."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.store import Proxy, extract, is_resolved, resolve


def counting_factory(value):
    calls = {"n": 0}

    def factory():
        calls["n"] += 1
        return value

    return factory, calls


class TestLaziness:
    def test_not_resolved_until_used(self):
        factory, calls = counting_factory([1, 2, 3])
        proxy = Proxy(factory)
        assert not is_resolved(proxy)
        assert calls["n"] == 0
        assert len(proxy) == 3
        assert is_resolved(proxy)
        assert calls["n"] == 1

    def test_factory_called_exactly_once(self):
        factory, calls = counting_factory({"a": 1})
        proxy = Proxy(factory)
        _ = proxy["a"]
        _ = proxy.keys()
        _ = len(proxy)
        assert calls["n"] == 1

    def test_explicit_resolve_and_extract(self):
        target = {"x": 1}
        proxy = Proxy(lambda: target)
        resolve(proxy)
        assert is_resolved(proxy)
        assert extract(proxy) is target

    def test_repr_before_resolution_does_not_resolve(self):
        factory, calls = counting_factory(42)
        proxy = Proxy(factory)
        assert repr(proxy) == "Proxy(<unresolved>)"
        assert calls["n"] == 0


class TestTransparency:
    def test_attribute_access(self):
        proxy = Proxy(lambda: complex(3, 4))
        assert proxy.real == 3.0
        assert proxy.imag == 4.0
        assert proxy.conjugate() == complex(3, -4)

    def test_method_mutation_visible(self):
        target: list = []
        proxy = Proxy(lambda: target)
        proxy.append(7)
        assert target == [7]

    def test_setattr_forwards(self):
        class Box:
            pass

        box = Box()
        proxy = Proxy(lambda: box)
        proxy.value = 9
        assert box.value == 9

    def test_item_protocol(self):
        proxy = Proxy(lambda: {"a": 1})
        proxy["b"] = 2
        assert proxy["b"] == 2
        assert "b" in proxy
        del proxy["a"]
        assert "a" not in proxy

    def test_iteration(self):
        proxy = Proxy(lambda: [1, 2, 3])
        assert [x * 2 for x in proxy] == [2, 4, 6]

    def test_call(self):
        proxy = Proxy(lambda: (lambda a, b: a + b))
        assert proxy(2, 3) == 5

    def test_arithmetic_both_sides(self):
        proxy = Proxy(lambda: 10)
        assert proxy + 5 == 15
        assert 5 + proxy == 15
        assert proxy - 3 == 7
        assert 3 - proxy == -7
        assert proxy * 2 == 20
        assert 2 * proxy == 20
        assert proxy / 4 == 2.5
        assert 100 / proxy == 10
        assert proxy // 3 == 3
        assert proxy % 3 == 1
        assert proxy**2 == 100
        assert -proxy == -10
        assert abs(Proxy(lambda: -5)) == 5

    def test_comparisons(self):
        proxy = Proxy(lambda: 10)
        assert proxy == 10
        assert proxy != 11
        assert proxy < 11
        assert proxy <= 10
        assert proxy > 9
        assert proxy >= 10

    def test_proxy_vs_proxy_comparison(self):
        assert Proxy(lambda: 1) < Proxy(lambda: 2)
        assert Proxy(lambda: "a") == Proxy(lambda: "a")

    def test_bool_str_hash(self):
        assert bool(Proxy(lambda: []))is False
        assert str(Proxy(lambda: 42)) == "42"
        assert hash(Proxy(lambda: "key")) == hash("key")

    def test_numpy_asarray(self):
        proxy = Proxy(lambda: [1.0, 2.0, 3.0])
        arr = np.asarray(proxy)
        assert arr.shape == (3,)
        assert arr.sum() == 6.0

    def test_numpy_math_on_proxied_array(self):
        proxy = Proxy(lambda: np.arange(4.0))
        assert float(np.sum(proxy + 1)) == 10.0


class TestPickling:
    def test_pickle_ships_factory_not_data(self):
        # A module-level factory stand-in: use a picklable callable.
        proxy = Proxy(_module_factory)
        resolve(proxy)
        data = pickle.dumps(proxy)
        clone = pickle.loads(data)
        assert isinstance(clone, Proxy)
        assert not is_resolved(clone)  # resolution does not travel
        assert extract(clone) == {"payload": "from-module-factory"}

    def test_unpicklable_factory_fails_at_pickle_time(self):
        proxy = Proxy(lambda: 1)
        with pytest.raises(Exception):
            pickle.dumps(proxy)


def _module_factory():
    return {"payload": "from-module-factory"}

"""Tests for reprioritization churn metrics."""

from __future__ import annotations

import numpy as np

from repro.sim import ordering_stabilizes, reassignment_stats
from repro.sim.me_model import ReprioritizationTrace


def make_record(index, priorities):
    priorities = np.asarray(priorities)
    return ReprioritizationTrace(
        index=index,
        time_start=float(index),
        time_stop=float(index) + 0.5,
        n_completed=index * 10,
        n_reprioritized=len(priorities),
        priorities=priorities,
    )


class TestReassignmentStats:
    def test_first_round_is_baseline(self):
        stats = reassignment_stats([make_record(1, [3, 1, 2])])
        assert len(stats) == 1
        assert stats[0].mean_abs_shift == 0.0
        assert stats[0].spearman_vs_previous == 1.0

    def test_identical_orderings_no_churn(self):
        records = [make_record(1, [3, 2, 1]), make_record(2, [3, 2, 1])]
        stats = reassignment_stats(records)
        assert stats[1].mean_abs_shift == 0.0
        assert stats[1].spearman_vs_previous == 1.0

    def test_reversed_ordering_max_churn(self):
        records = [make_record(1, [1, 2, 3, 4]), make_record(2, [4, 3, 2, 1])]
        stats = reassignment_stats(records)
        assert stats[1].mean_abs_shift > 1.0
        assert stats[1].spearman_vs_previous < 0

    def test_shrinking_sets_aligned_on_tail(self):
        records = [
            make_record(1, [5, 4, 3, 2, 1]),
            make_record(2, [3, 2, 1]),  # same relative order on the tail
        ]
        stats = reassignment_stats(records)
        assert stats[1].spearman_vs_previous > 0.9

    def test_empty_round_skipped(self):
        records = [make_record(1, [2, 1]), make_record(2, [])]
        stats = reassignment_stats(records)
        assert len(stats) == 1

    def test_stabilization_detector(self):
        # Chaotic early, consistent late.
        rng = np.random.default_rng(0)
        records = [make_record(1, rng.permutation(50) + 1)]
        records.append(make_record(2, rng.permutation(50) + 1))
        records.append(make_record(3, rng.permutation(40) + 1))
        stable = np.arange(30, 0, -1)
        records.append(make_record(4, stable))
        records.append(make_record(5, stable[:25] - 0))
        assert ordering_stabilizes(reassignment_stats(records))

    def test_fig4_records_work(self):
        from repro.sim import Fig4Config, run_fig4
        from repro.sim.workload import RuntimeModel

        result = run_fig4(
            Fig4Config(
                n_tasks=150, n_workers=10, batch_size=10, repri_every=25,
                pool_submissions=(1,), queue_delay_mean=5.0,
                runtime=RuntimeModel(mean=8.0, sigma=0.4),
            )
        )
        stats = reassignment_stats(result.reprioritizations)
        assert len(stats) == len(result.reprioritizations)
        assert all(np.isfinite(s.spearman_vs_previous) for s in stats)

"""Tests for the DES worker pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQSQL, EQ_STOP
from repro.core.constants import TaskStatus
from repro.db import MemoryTaskStore
from repro.sim import SimPoolConfig, SimWorkerPool
from repro.simt import Environment
from repro.telemetry import TraceCollector, concurrency_series, utilization_stats


def build(n_workers=4, batch=None, threshold=1, query_cost=0.1, runtime=2.0):
    env = Environment()
    eqsql = EQSQL(MemoryTaskStore(), clock=env.clock)
    trace = TraceCollector()
    pool = SimWorkerPool(
        env,
        eqsql,
        SimPoolConfig(
            name="p",
            n_workers=n_workers,
            batch_size=batch,
            threshold=threshold,
            query_cost=query_cost,
        ),
        runtime_fn=lambda tid, payload: runtime,
        trace=trace,
    )
    return env, eqsql, trace, pool


def run_until_done(env, pool, n_tasks):
    while pool.tasks_completed < n_tasks:
        env.step()


class TestExecution:
    def test_completes_all_tasks(self):
        env, eqsql, trace, pool = build(n_workers=3)
        eqsql.submit_tasks("e", 0, [f"t{i}" for i in range(10)])
        pool.start()
        run_until_done(env, pool, 10)
        assert pool.tasks_completed == 10
        # All reported through the real DB: input queue holds results.
        assert eqsql.queue_lengths(0) == (0, 10)

    def test_makespan_matches_capacity(self):
        # 12 tasks of 2s on 4 workers -> three waves ~6s + overheads.
        env, eqsql, _, pool = build(n_workers=4, runtime=2.0, query_cost=0.0)
        eqsql.submit_tasks("e", 0, ["t"] * 12)
        pool.start()
        run_until_done(env, pool, 12)
        assert 6.0 <= env.now < 8.0

    def test_concurrency_never_exceeds_workers(self):
        env, eqsql, trace, pool = build(n_workers=3, batch=8)
        eqsql.submit_tasks("e", 0, ["t"] * 30)
        pool.start()
        run_until_done(env, pool, 30)
        series = concurrency_series(trace.snapshot(), source="p")
        assert int(series.counts.max()) <= 3

    def test_oversubscription_owns_more_than_runs(self):
        env, eqsql, trace, pool = build(n_workers=2, batch=6, runtime=5.0)
        eqsql.submit_tasks("e", 0, ["t"] * 6)
        pool.start()
        # After the first fetch the pool owns 6 but runs only 2.
        env.run(until=1.0)
        assert pool.owned() == 6
        series = concurrency_series(trace.snapshot(), source="p", end=1.0)
        assert int(series.counts.max()) == 2
        run_until_done(env, pool, 6)

    def test_db_timestamps_are_virtual(self):
        env, eqsql, _, pool = build(n_workers=1, runtime=4.0, query_cost=0.0)
        futures = eqsql.submit_tasks("e", 0, ["a", "b"])
        pool.start()
        run_until_done(env, pool, 2)
        first = eqsql.task_info(futures[0].eq_task_id)
        second = eqsql.task_info(futures[1].eq_task_id)
        assert first.runtime() == pytest.approx(4.0)
        # Sequential on one worker: second starts when first stops.
        assert second.time_start >= first.time_stop

    def test_worker_pool_column_set(self):
        env, eqsql, _, pool = build()
        futures = eqsql.submit_tasks("e", 0, ["t"])
        pool.start()
        run_until_done(env, pool, 1)
        assert eqsql.task_info(futures[0].eq_task_id).worker_pool == "p"


class TestShutdown:
    def test_eq_stop_drains_pool(self):
        env, eqsql, _, pool = build(n_workers=2, runtime=1.0)
        eqsql.submit_tasks("e", 0, ["t"] * 4)
        stop = eqsql.submit_task("e", 0, EQ_STOP, priority=-10)
        pool.start()
        env.run(until=pool.process)
        assert pool.tasks_completed == 4
        assert eqsql.task_info(stop.eq_task_id).eq_status == TaskStatus.COMPLETE

    def test_explicit_stop_ends_process(self):
        env, eqsql, _, pool = build()
        pool.start()
        env.run(until=2.0)
        pool.stop()
        env.run(until=pool.process)  # terminates

    def test_double_start_rejected(self):
        env, _, _, pool = build()
        pool.start()
        with pytest.raises(RuntimeError):
            pool.start()


class TestPolicyEffects:
    def run_policy(self, batch, threshold, n_tasks=120):
        # Heterogeneous runtimes (the paper's lognormal padding exists
        # for exactly this reason): constant runtimes synchronize
        # completions and mask the policy differences.
        env = Environment()
        eqsql = EQSQL(MemoryTaskStore(), clock=env.clock)
        trace = TraceCollector()
        pool = SimWorkerPool(
            env,
            eqsql,
            SimPoolConfig(
                name="p", n_workers=8, batch_size=batch,
                threshold=threshold, query_cost=0.2,
            ),
            runtime_fn=lambda tid, payload: 3.0 + (tid * 2.17) % 7,
            trace=trace,
        )
        eqsql.submit_tasks("e", 0, ["t"] * n_tasks)
        pool.start()
        run_until_done(env, pool, n_tasks)
        series = concurrency_series(trace.snapshot(), source="p", end=env.now)
        return utilization_stats(series, 8), trace

    def test_large_threshold_reduces_utilization(self):
        tight, _ = self.run_policy(batch=8, threshold=1)
        loose, _ = self.run_policy(batch=8, threshold=8)
        assert tight["utilization"] > loose["utilization"]

    def test_large_threshold_fewer_fetches(self):
        _, tight_trace = self.run_policy(batch=8, threshold=1)
        _, loose_trace = self.run_policy(batch=8, threshold=8)
        from repro.telemetry import EventKind

        tight = len(tight_trace.filter(kind=EventKind.FETCH))
        loose = len(loose_trace.filter(kind=EventKind.FETCH))
        assert loose < tight

    def test_oversubscription_improves_utilization(self):
        exact, _ = self.run_policy(batch=8, threshold=1)
        over, _ = self.run_policy(batch=12, threshold=1)
        assert over["utilization"] >= exact["utilization"]

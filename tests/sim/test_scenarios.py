"""Tests for the Figure 3 / Figure 4 scenario models (reduced scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import Fig3Config, Fig4Config, run_fig3_panel, run_fig4
from repro.sim.workload import RuntimeModel

FAST_RUNTIME = RuntimeModel(mean=10.0, sigma=0.4)


def small_fig3(batch, threshold, **kw):
    return Fig3Config(
        batch_size=batch,
        threshold=threshold,
        n_workers=10,
        n_tasks=150,
        runtime=FAST_RUNTIME,
        **kw,
    )


def small_fig4(**kw):
    defaults = dict(
        n_tasks=200,
        n_workers=10,
        batch_size=10,
        repri_every=25,
        pool_submissions=(1, 2),
        queue_delay_mean=8.0,
        runtime=FAST_RUNTIME,
    )
    defaults.update(kw)
    return Fig4Config(**defaults)


class TestFig3:
    def test_panel_completes_all_tasks(self):
        result = run_fig3_panel(small_fig3(10, 1))
        assert result.series.counts.max() <= 10
        assert result.makespan > 0
        # ~150 tasks * 10s / 10 workers ≈ 150s.
        assert 140 < result.makespan < 220

    def test_utilization_ordering_matches_paper(self):
        """Fig 3's qualitative claim: oversubscribed >= exact > big threshold."""
        over = run_fig3_panel(small_fig3(15, 1))
        exact = run_fig3_panel(small_fig3(10, 1))
        loose = run_fig3_panel(small_fig3(10, 8))
        assert over.stats["utilization"] >= exact.stats["utilization"] - 1e-6
        assert exact.stats["utilization"] > loose.stats["utilization"]

    def test_big_threshold_sawtooth(self):
        loose = run_fig3_panel(small_fig3(10, 8))
        exact = run_fig3_panel(small_fig3(10, 1))
        # Saw-tooth: far less time at full concurrency, fewer fetches.
        assert loose.stats["full_fraction"] < exact.stats["full_fraction"]
        assert loose.n_fetches < exact.n_fetches / 2

    def test_deterministic(self):
        a = run_fig3_panel(small_fig3(10, 1))
        b = run_fig3_panel(small_fig3(10, 1))
        assert a.makespan == b.makespan
        assert np.array_equal(a.series.counts, b.series.counts)

    def test_seed_changes_trace(self):
        a = run_fig3_panel(small_fig3(10, 1, seed=1))
        b = run_fig3_panel(small_fig3(10, 1, seed=2))
        assert a.makespan != b.makespan


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(small_fig4())

    def test_all_tasks_completed_across_pools(self, result):
        assert sum(result.pool_completed.values()) == 200
        assert result.pool_names == ["pool-1", "pool-2", "pool-3"]

    def test_every_pool_does_work(self, result):
        """The paper's equitable sharing: no pool starves."""
        assert all(count > 0 for count in result.pool_completed.values())
        # Later pools do progressively less (they join later).
        assert (
            result.pool_completed["pool-1"]
            > result.pool_completed["pool-2"]
            > result.pool_completed["pool-3"]
        )

    def test_pools_start_after_scheduler_delay(self, result):
        """Fig 4's observation: pools do not start when submitted."""
        for name in ("pool-2", "pool-3"):
            submit, start = result.pool_timing[name]
            assert start > submit
        assert result.pool_timing["pool-2"][1] < result.pool_timing["pool-3"][1]

    def test_reprioritization_cadence_speeds_up(self, result):
        """More pools -> 50 completions arrive faster -> shorter gaps."""
        gaps = result.repri_gaps()
        assert len(gaps) >= 4
        assert np.mean(gaps[-2:]) < np.mean(gaps[:2])

    def test_reprioritizations_cover_shrinking_sets(self, result):
        """Paper: 700 reprioritized, then 650, then ... (shrinking)."""
        counts = [r.n_reprioritized for r in result.reprioritizations]
        assert all(c2 <= c1 for c1, c2 in zip(counts, counts[1:]))
        priorities = result.reprioritizations[0].priorities
        # Priorities are the 1..n ranks of the paper.
        assert sorted(priorities) == list(range(1, len(priorities) + 1))

    def test_concurrency_bounded_per_pool(self, result):
        for name, series in result.pool_series.items():
            assert series.counts.max() <= 10

    def test_best_trajectory_monotone_and_improving(self, result):
        trajectory = result.best_trajectory()
        assert len(trajectory) == 200
        assert np.all(np.diff(trajectory) <= 1e-12)
        assert trajectory[-1] < trajectory[0]

    def test_deterministic(self):
        a = run_fig4(small_fig4())
        b = run_fig4(small_fig4())
        assert a.makespan == b.makespan
        assert a.pool_completed == b.pool_completed
        assert a.repri_start_times() == b.repri_start_times()


class TestGPREffect:
    def test_reprioritization_finds_good_values_sooner(self):
        """Ablation seed: with GPR reprioritization the good-value mass
        shifts earlier in the completion order vs. no reprioritization."""
        with_gpr = run_fig4(small_fig4())
        no_gpr = run_fig4(small_fig4(repri_every=10_000))  # never triggers
        assert len(no_gpr.reprioritizations) == 0
        assert len(with_gpr.reprioritizations) > 0

        def auc(result):
            # Mean best-so-far over completions: lower = faster progress.
            return float(np.mean(result.best_trajectory()))

        assert auc(with_gpr) < auc(no_gpr)

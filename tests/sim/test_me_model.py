"""Direct tests for the DES ME-algorithm process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.sim import SimMEAlgorithm, SimPoolConfig, SimWorkerPool
from repro.simt import Environment
from repro.telemetry import EventKind, TraceCollector


def build_scenario(n_tasks=60, repri_every=20, n_workers=5, runtime=4.0, **me_kwargs):
    env = Environment()
    eqsql = EQSQL(MemoryTaskStore(), clock=env.clock)
    trace = TraceCollector()
    rng = np.random.default_rng(0)
    points = rng.uniform(-5, 5, size=(n_tasks, 2))
    values = np.sum(points**2, axis=1)
    payloads = ["{}"] * n_tasks
    me = SimMEAlgorithm(
        env, eqsql, 0, points, values, payloads,
        repri_every=repri_every, trace=trace, **me_kwargs,
    )
    pool = SimWorkerPool(
        env, eqsql,
        SimPoolConfig(name="p", n_workers=n_workers, query_cost=0.1),
        runtime_fn=lambda tid, _p: runtime,
        trace=trace,
    )
    return env, me, pool, trace


class TestSimMEAlgorithm:
    def test_all_tasks_complete_in_order_tracking(self):
        env, me, pool, _ = build_scenario()
        me.start()
        pool.start()
        env.run(until=me.process)
        assert sorted(me.completion_order) == list(range(60))
        assert me.completed_values().shape == (60,)

    def test_remote_duration_blocks_me_not_pools(self):
        """During a long reprioritization the pools keep completing."""
        env, me, pool, trace = build_scenario(
            remote_duration=lambda n: 10.0, repri_every=20
        )
        me.start()
        pool.start()
        env.run(until=me.process)
        assert len(me.reprioritizations) >= 1
        first = me.reprioritizations[0]
        assert first.time_stop - first.time_start == pytest.approx(10.0)
        # Tasks stopped during the reprioritization window.
        stops = [
            e.time for e in trace.filter(kind=EventKind.TASK_STOP)
            if first.time_start < e.time < first.time_stop
        ]
        assert stops, "pools idled during reprioritization"

    def test_callback_indices(self):
        seen = []
        env, me, pool, _ = build_scenario(
            n_tasks=80, repri_every=20, on_reprioritization=seen.append
        )
        me.start()
        pool.start()
        env.run(until=me.process)
        assert seen[: len(me.reprioritizations)] == list(
            range(1, len(me.reprioritizations) + 1)
        )

    def test_no_reprioritization_when_batch_never_reached(self):
        env, me, pool, _ = build_scenario(n_tasks=10, repri_every=100)
        me.start()
        pool.start()
        env.run(until=me.process)
        assert me.reprioritizations == []

    def test_priorities_shape_each_round(self):
        env, me, pool, _ = build_scenario(n_tasks=60, repri_every=15)
        me.start()
        pool.start()
        env.run(until=me.process)
        for record in me.reprioritizations:
            assert sorted(record.priorities) == list(
                range(1, len(record.priorities) + 1)
            )
            assert record.n_reprioritized <= len(record.priorities)

    def test_double_start_rejected(self):
        env, me, pool, _ = build_scenario()
        me.start()
        with pytest.raises(RuntimeError):
            me.start()

    def test_trace_phase_events_paired(self):
        env, me, pool, trace = build_scenario(n_tasks=60, repri_every=20)
        me.start()
        pool.start()
        env.run(until=me.process)
        starts = trace.filter(kind=EventKind.PHASE_START, source="reprioritize")
        stops = trace.filter(kind=EventKind.PHASE_STOP, source="reprioritize")
        assert len(starts) == len(stops) == len(me.reprioritizations)
        for s, e in zip(starts, stops):
            assert s.time <= e.time

"""Tests for workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.me import ackley
from repro.sim import AckleyWorkload, RuntimeModel
from repro.sim.workload import ACKLEY_BOUND


class TestRuntimeModel:
    def test_sample_count_and_positivity(self):
        model = RuntimeModel(mean=3.0, sigma=0.5)
        samples = model.sample(np.random.default_rng(0), 500)
        assert samples.shape == (500,)
        assert np.all(samples > 0)

    def test_sigma_zero_constant(self):
        samples = RuntimeModel(mean=2.0, sigma=0.0).sample(np.random.default_rng(0), 5)
        assert np.allclose(samples, 2.0)

    def test_mean_approached(self):
        samples = RuntimeModel(mean=5.0, sigma=0.5).sample(
            np.random.default_rng(1), 100_000
        )
        assert float(samples.mean()) == pytest.approx(5.0, rel=0.03)


class TestAckleyWorkload:
    def test_sizes_and_domain(self):
        wl = AckleyWorkload(n_tasks=100, dim=4).generate()
        assert len(wl) == 100
        assert wl.points.shape == (100, 4)
        assert np.all(np.abs(wl.points) <= ACKLEY_BOUND)
        assert wl.values.shape == (100,)
        assert wl.runtimes.shape == (100,)

    def test_values_match_function(self):
        wl = AckleyWorkload(n_tasks=50, dim=3).generate()
        assert np.allclose(wl.values, np.asarray(ackley(wl.points)))

    def test_deterministic_in_seed(self):
        a = AckleyWorkload(n_tasks=20, seed=7).generate()
        b = AckleyWorkload(n_tasks=20, seed=7).generate()
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.runtimes, b.runtimes)
        c = AckleyWorkload(n_tasks=20, seed=8).generate()
        assert not np.array_equal(a.points, c.points)

    def test_payloads_decode_to_points(self):
        import json

        wl = AckleyWorkload(n_tasks=10).generate()
        for i, payload in enumerate(wl.payloads):
            decoded = json.loads(payload)
            assert np.allclose(decoded["x"], wl.points[i])

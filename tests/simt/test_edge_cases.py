"""Edge-case tests for the DES kernel."""

from __future__ import annotations

import pytest

from repro.simt import AllOf, AnyOf, Environment
from repro.util.errors import InvalidStateError


class TestEventLifecycle:
    def test_double_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(InvalidStateError):
            event.succeed(2)
        with pytest.raises(InvalidStateError):
            event.fail(RuntimeError("late"))

    def test_value_before_trigger_rejected(self):
        env = Environment()
        event = env.event()
        with pytest.raises(InvalidStateError):
            _ = event.value
        with pytest.raises(InvalidStateError):
            _ = event.ok

    def test_timeout_carries_value(self):
        env = Environment()

        def proc():
            value = yield env.timeout(2, value="payload")
            return (env.now, value)

        assert env.run(until=env.process(proc())) == (2.0, "payload")

    def test_delayed_succeed(self):
        env = Environment()
        event = env.event()
        log = []

        def waiter():
            value = yield event
            log.append((env.now, value))

        env.process(waiter())
        event.succeed("later", delay=7.5)
        env.run()
        assert log == [(7.5, "later")]


class TestConditionFailures:
    def test_allof_fails_on_first_child_failure(self):
        env = Environment()

        def proc():
            good = env.timeout(5, value="ok")
            bad = env.event()
            bad.fail(ValueError("child broke"))
            try:
                yield AllOf(env, [good, bad])
            except ValueError as exc:
                return (env.now, str(exc))

        # Failure propagates before the slow child would complete.
        assert env.run(until=env.process(proc())) == (0.0, "child broke")

    def test_anyof_failure_first_wins(self):
        env = Environment()

        def proc():
            slow = env.timeout(10, value="slow")
            bad = env.event()
            bad.fail(RuntimeError("boom"))
            try:
                yield AnyOf(env, [slow, bad])
            except RuntimeError:
                return "failed-fast"

        assert env.run(until=env.process(proc())) == "failed-fast"

    def test_anyof_success_first_ignores_later_failure(self):
        env = Environment()

        def failer(event):
            yield env.timeout(5)
            event.fail(RuntimeError("too late"))

        def proc():
            fast = env.timeout(1, value="fast")
            doomed = env.event()
            env.process(failer(doomed))
            results = yield AnyOf(env, [fast, doomed])
            return list(results.values())

        p = env.process(proc())
        env.run()  # run to exhaustion: the late failure must not blow up
        assert p.value == ["fast"]

    def test_nested_conditions(self):
        env = Environment()

        def proc():
            inner = AllOf(env, [env.timeout(1), env.timeout(2)])
            outer = AnyOf(env, [inner, env.timeout(10)])
            yield outer
            return env.now

        assert env.run(until=env.process(proc())) == 2.0


class TestRunSemantics:
    def test_run_until_time_with_pending_events(self):
        env = Environment()
        log = []

        def proc():
            while True:
                yield env.timeout(3)
                log.append(env.now)

        env.process(proc())
        env.run(until=4)
        assert log == [3.0]
        assert env.now == 4.0
        env.run(until=7)
        assert log == [3.0, 6.0]

    def test_processes_waiting_on_each_other_chain(self):
        env = Environment()

        def leaf():
            yield env.timeout(2)
            return 1

        def middle():
            value = yield env.process(leaf())
            yield env.timeout(1)
            return value + 1

        def root():
            value = yield env.process(middle())
            return value + 1

        assert env.run(until=env.process(root())) == 3
        assert env.now == 3.0

    def test_many_simultaneous_events_fifo(self):
        env = Environment()
        order = []

        def proc(k):
            yield env.timeout(5)
            order.append(k)

        for k in range(50):
            env.process(proc(k))
        env.run()
        assert order == list(range(50))

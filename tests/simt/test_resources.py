"""Tests for DES resources."""

from __future__ import annotations

import pytest

from repro.simt import Container, Environment, Resource, SimStore


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(k):
            req = resource.request()
            yield req
            active.append(k)
            peak.append(len(active))
            yield env.timeout(1)
            active.remove(k)
            resource.release()

        for k in range(5):
            env.process(worker(k))
        env.run()
        assert max(peak) == 2
        # 5 tasks of 1s at capacity 2 -> makespan ceil(5/2) = 3.
        assert env.now == 3.0

    def test_fifo_grant_order(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(k):
            yield resource.request()
            order.append(k)
            yield env.timeout(1)
            resource.release()

        for k in range(4):
            env.process(worker(k))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_request(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=1).release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_counters(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder():
            yield resource.request()
            yield env.timeout(5)
            resource.release()

        def waiter():
            yield env.timeout(1)
            yield resource.request()
            resource.release()

        env.process(holder())
        env.process(waiter())
        env.run(until=2)
        assert resource.in_use == 1
        assert resource.queued == 1
        env.run()


class TestSimStore:
    def test_put_then_get(self):
        env = Environment()
        store = SimStore(env)
        store.put("item")
        results = []

        def getter():
            value = yield store.get()
            results.append(value)

        env.process(getter())
        env.run()
        assert results == ["item"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = SimStore(env)
        results = []

        def getter():
            value = yield store.get()
            results.append((env.now, value))

        def putter():
            yield env.timeout(3)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert results == [(3.0, "late")]

    def test_fifo_items_and_getters(self):
        env = Environment()
        store = SimStore(env)
        got = []

        def getter(k):
            value = yield store.get()
            got.append((k, value))

        for k in range(2):
            env.process(getter(k))

        def putter():
            yield env.timeout(1)
            store.put("first")
            store.put("second")

        env.process(putter())
        env.run()
        assert got == [(0, "first"), (1, "second")]

    def test_len(self):
        env = Environment()
        store = SimStore(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestContainer:
    def test_get_blocks_until_level(self):
        env = Environment()
        tank = Container(env, init=1)
        times = []

        def consumer():
            yield tank.get(3)
            times.append(env.now)

        def producer():
            yield env.timeout(2)
            tank.put(2)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [2.0]
        assert tank.level == 0.0

    def test_fifo_draining(self):
        env = Environment()
        tank = Container(env)
        order = []

        def consumer(k, amount):
            yield tank.get(amount)
            order.append(k)

        env.process(consumer("big", 5))
        env.process(consumer("small", 1))

        def producer():
            yield env.timeout(1)
            tank.put(2)  # not enough for 'big'; 'small' must wait FIFO
            yield env.timeout(1)
            tank.put(4)

        env.process(producer())
        env.run()
        assert order == ["big", "small"]

    def test_invalid_amounts(self):
        env = Environment()
        tank = Container(env)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)
        with pytest.raises(ValueError):
            Container(env, init=-1)

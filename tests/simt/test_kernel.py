"""Tests for the DES kernel: environment, events, processes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import AllOf, AnyOf, Environment, Interrupt
from repro.util.errors import InvalidStateError


class TestTimeAdvancement:
    def test_timeouts_advance_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_run_until_time(self):
        env = Environment()
        log = []

        def ticker():
            while True:
                yield env.timeout(1)
                log.append(env.now)

        env.process(ticker())
        env.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_rejected(self):
        env = Environment()
        env.process(iter([]))  # no-op
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_events_run_in_fifo_order(self):
        env = Environment()
        order = []

        def make(name):
            def proc():
                yield env.timeout(0)
                order.append(name)

            return proc

        for name in "abc":
            env.process(make(name)())
        env.run()
        assert order == ["a", "b", "c"]

    def test_step_without_events(self):
        with pytest.raises(InvalidStateError):
            Environment().step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(3)
        assert env.peek() == 3.0


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"

    def test_process_waits_on_process(self):
        env = Environment()

        def child():
            yield env.timeout(3)
            return 42

        def parent():
            value = yield env.process(child())
            return value * 2

        assert env.run(until=env.process(parent())) == 84
        assert env.now == 3.0

    def test_process_exception_propagates_to_run(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            raise RuntimeError("sim boom")

        with pytest.raises(RuntimeError, match="sim boom"):
            env.run(until=env.process(proc()))

    def test_failed_event_thrown_into_waiter(self):
        env = Environment()
        caught = []

        def proc():
            event = env.event()
            event.fail(ValueError("bad"))
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        env.run(until=env.process(proc()))
        assert caught == ["bad"]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 42  # type: ignore[misc]

        with pytest.raises(TypeError):
            env.run(until=env.process(proc()))

    def test_deadlock_detected_when_awaiting(self):
        env = Environment()

        def proc():
            yield env.event()  # never triggered

        with pytest.raises(InvalidStateError, match="deadlock"):
            env.run(until=env.process(proc()))

    def test_manual_event_wakeup(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter():
            value = yield gate
            log.append((env.now, value))

        def opener():
            yield env.timeout(4)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [(4.0, "open")]


class TestInterrupt:
    def test_interrupt_waiting_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(target):
            yield env.timeout(2)
            target.interrupt("wake up")

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        assert log == [(2.0, "wake up")]

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        p.interrupt()  # must not raise

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def worker():
            while True:
                try:
                    yield env.timeout(10)
                    log.append(("slept", env.now))
                    return
                except Interrupt:
                    log.append(("interrupted", env.now))

        def nudger(target):
            yield env.timeout(1)
            target.interrupt()

        p = env.process(worker())
        env.process(nudger(p))
        env.run()
        assert log == [("interrupted", 1.0), ("slept", 11.0)]


class TestConditions:
    def test_all_of(self):
        env = Environment()

        def proc():
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(3, value="b")
            results = yield AllOf(env, [t1, t2])
            return (env.now, sorted(results.values()))

        assert env.run(until=env.process(proc())) == (3.0, ["a", "b"])

    def test_any_of(self):
        env = Environment()

        def proc():
            t1 = env.timeout(5, value="slow")
            t2 = env.timeout(1, value="fast")
            results = yield AnyOf(env, [t1, t2])
            return (env.now, list(results.values()))

        assert env.run(until=env.process(proc())) == (1.0, ["fast"])

    def test_empty_all_of_succeeds_immediately(self):
        env = Environment()

        def proc():
            yield AllOf(env, [])
            return env.now

        assert env.run(until=env.process(proc())) == 0.0


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
    def test_same_delays_same_trace(self, delays):
        def simulate():
            env = Environment()
            trace = []

            def proc(d, k):
                yield env.timeout(d)
                trace.append((env.now, k))

            for k, d in enumerate(delays):
                env.process(proc(d, k))
            env.run()
            return trace

        assert simulate() == simulate()

    @settings(max_examples=20, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
    def test_events_fire_in_time_order(self, delays):
        env = Environment()
        times = []

        def proc(d):
            yield env.timeout(d)
            times.append(env.now)

        for d in delays:
            env.process(proc(d))
        env.run()
        assert times == sorted(times)

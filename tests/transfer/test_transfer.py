"""Tests for the third-party transfer simulator."""

from __future__ import annotations

import threading

import pytest

from repro.transfer import TransferClient, TransferEndpoint, TransferState
from repro.util.errors import NotFoundError, TransferError


@pytest.fixture
def client():
    client = TransferClient(retry_delay=0.01)
    client.register_endpoint(TransferEndpoint("laptop", bandwidth=1e8, latency=0.0))
    client.register_endpoint(TransferEndpoint("bebop", bandwidth=1e9, latency=0.0))
    client.register_endpoint(
        TransferEndpoint("theta", bandwidth=5e8, latency=0.005)
    )
    return client


class TestEndpoint:
    def test_put_get_delete(self):
        ep = TransferEndpoint("x")
        ep.put("k", b"data")
        assert ep.get("k") == b"data"
        assert ep.exists("k")
        assert ep.size("k") == 4
        assert ep.delete("k")
        assert not ep.exists("k")
        assert not ep.delete("k")

    def test_get_missing_raises(self):
        with pytest.raises(NotFoundError):
            TransferEndpoint("x").get("nope")

    def test_size_missing_raises(self):
        with pytest.raises(NotFoundError):
            TransferEndpoint("x").size("nope")

    def test_invalid_link_params(self):
        with pytest.raises(ValueError):
            TransferEndpoint("x", bandwidth=0)
        with pytest.raises(ValueError):
            TransferEndpoint("x", latency=-1)

    def test_keys_and_total(self):
        ep = TransferEndpoint("x")
        ep.put("b", b"22")
        ep.put("a", b"1")
        assert ep.keys() == ["a", "b"]
        assert ep.total_bytes() == 3


class TestTransfers:
    def test_third_party_transfer(self, client):
        client.endpoint("laptop").put("model.bin", b"\x01" * 1000)
        task = client.submit_transfer("laptop", "bebop", src_key="model.bin")
        task.wait(timeout=10)
        assert task.state == TransferState.SUCCEEDED
        assert task.bytes_transferred == 1000
        assert client.endpoint("bebop").get("model.bin") == b"\x01" * 1000
        # Source retains its copy (transfer, not move).
        assert client.endpoint("laptop").exists("model.bin")

    def test_rename_on_transfer(self, client):
        client.endpoint("laptop").put("a", b"x")
        client.submit_transfer("laptop", "bebop", src_key="a", dst_key="b").wait(10)
        assert client.endpoint("bebop").get("b") == b"x"
        assert not client.endpoint("bebop").exists("a")

    def test_batch_transfer(self, client):
        for i in range(3):
            client.endpoint("laptop").put(f"f{i}", bytes([i]))
        task = client.submit_transfer(
            "laptop", "theta", items=[(f"f{i}", f"f{i}") for i in range(3)]
        )
        task.wait(10)
        assert task.bytes_transferred == 3
        assert client.endpoint("theta").keys() == ["f0", "f1", "f2"]

    def test_missing_source_fails(self, client):
        task = client.submit_transfer("laptop", "bebop", src_key="ghost")
        with pytest.raises(TransferError):
            task.wait(10)
        assert task.state == TransferState.FAILED

    def test_unknown_endpoint(self, client):
        with pytest.raises(NotFoundError):
            client.submit_transfer("laptop", "nowhere", src_key="k")

    def test_duration_model(self, client):
        # 1e8 bytes over min(1e8, 1e9) B/s = 1 second + latencies.
        assert client.transfer_duration("laptop", "bebop", int(1e8)) == pytest.approx(1.0)
        # theta adds 5 ms latency and is slower than bebop.
        assert client.transfer_duration("theta", "bebop", int(5e8)) == pytest.approx(
            1.005
        )

    def test_speedup_scales_duration(self):
        client = TransferClient(speedup=10.0)
        client.register_endpoint(TransferEndpoint("a", bandwidth=1e6))
        client.register_endpoint(TransferEndpoint("b", bandwidth=1e6))
        assert client.transfer_duration("a", "b", int(1e6)) == pytest.approx(0.1)

    def test_task_lookup(self, client):
        client.endpoint("laptop").put("k", b"v")
        task = client.submit_transfer("laptop", "bebop", src_key="k")
        assert client.task(task.task_id) is task
        with pytest.raises(NotFoundError):
            client.task("xfer-unknown")

    def test_duplicate_endpoint_rejected(self, client):
        with pytest.raises(ValueError):
            client.register_endpoint(TransferEndpoint("laptop"))


class TestRetry:
    def test_offline_destination_retries_then_succeeds(self, client):
        client.endpoint("laptop").put("k", b"v")
        client.endpoint("bebop").set_online(False)
        task = client.submit_transfer("laptop", "bebop", src_key="k")

        def bring_back():
            client.endpoint("bebop").set_online(True)

        timer = threading.Timer(0.02, bring_back)
        timer.start()
        task.wait(timeout=10)
        timer.join()
        assert task.state == TransferState.SUCCEEDED

    def test_offline_exhausts_retries(self):
        client = TransferClient(max_retries=1, retry_delay=0.01)
        client.register_endpoint(TransferEndpoint("a"))
        client.register_endpoint(TransferEndpoint("b"))
        client.endpoint("a").put("k", b"v")
        client.endpoint("b").set_online(False)
        task = client.submit_transfer("a", "b", src_key="k")
        with pytest.raises(TransferError, match="offline"):
            task.wait(timeout=10)

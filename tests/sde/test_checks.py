"""Tests for tolerance-aware output comparison."""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.sde import compare_outputs


class TestScalars:
    def test_exact_match(self):
        assert compare_outputs(1, 1).ok
        assert compare_outputs("a", "a").ok
        assert compare_outputs(None, None).ok

    def test_numeric_tolerance(self):
        assert compare_outputs(1.0, 1.0 + 1e-9).ok
        assert not compare_outputs(1.0, 1.1).ok

    def test_int_float_comparable(self):
        assert compare_outputs(2, 2.0).ok

    def test_bool_not_numeric(self):
        # True == 1 numerically, but a bool/int swap is a regression.
        assert not compare_outputs(True, 1).ok
        assert not compare_outputs(0, False).ok
        assert compare_outputs(True, True).ok

    def test_nan_equals_nan(self):
        assert compare_outputs(math.nan, math.nan).ok

    def test_string_mismatch_reported(self):
        result = compare_outputs("high", "low")
        assert not result.ok
        assert "expected 'high'" in result.mismatches[0]


class TestStructures:
    def test_nested_ok(self):
        expected = {"a": [1.0, 2.0], "b": {"c": "x"}}
        actual = {"a": [1.0, 2.0 + 1e-10], "b": {"c": "x"}}
        assert compare_outputs(expected, actual).ok

    def test_missing_and_extra_keys(self):
        result = compare_outputs({"a": 1, "b": 2}, {"a": 1, "c": 3})
        messages = "\n".join(result.mismatches)
        assert "$.b: missing" in messages
        assert "$.c: unexpected" in messages

    def test_length_mismatch(self):
        result = compare_outputs([1, 2, 3], [1, 2])
        assert "length 3 != 2" in result.mismatches[0]

    def test_path_reported_for_deep_mismatch(self):
        result = compare_outputs({"a": [{"b": 1.0}]}, {"a": [{"b": 9.0}]})
        assert result.mismatches[0].startswith("$.a[0].b")

    def test_type_mismatch(self):
        result = compare_outputs([1], {"0": 1})
        assert "type mismatch" in result.mismatches[0]

    def test_multiple_mismatches_all_reported(self):
        result = compare_outputs({"a": 1, "b": 2}, {"a": 9, "b": 8})
        assert len(result.mismatches) == 2

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers(-100, 100)
            | st.floats(allow_nan=False, allow_infinity=False, width=32)
            | st.text(max_size=10),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=15,
        )
    )
    def test_reflexive(self, value):
        assert compare_outputs(value, value).ok

"""Tests for workflow sharing and the model registry.

Task/model functions live at module level (in this file) because the
whole point of the spec format is import-path portability.
"""

from __future__ import annotations

import json

import pytest

from repro.core import EQSQL
from repro.db import MemoryTaskStore
from repro.sde import ModelRegistry, WorkflowSpec, run_workflow
from repro.sde.registry import ValidationError
from repro.sde.workflow import WorkflowSpecError, fn_reference, resolve_fn
from repro.util.errors import NotFoundError


# -- module-level task/model functions (importable by reference) ------------

def square_task(d):
    return {"y": d["x"] ** 2}


def shout_task(s):
    return s.upper()


def doubling_model(payload):
    return {"doubled": payload["n"] * 2, "label": payload.get("label", "")}


_BROKEN_BEHAVIOUR = {"offset": 0}


def drifting_model(payload):
    """A model whose behaviour tests mutate to simulate a regression."""
    return {"value": payload["n"] + _BROKEN_BEHAVIOUR["offset"]}


class TestFnReference:
    def test_round_trip(self):
        ref = fn_reference(square_task)
        assert ref.endswith(":square_task")
        assert resolve_fn(ref) is square_task

    def test_lambda_rejected(self):
        with pytest.raises(WorkflowSpecError):
            fn_reference(lambda x: x)

    def test_unresolvable_reference(self):
        with pytest.raises(WorkflowSpecError):
            resolve_fn("no.such.module:fn")
        with pytest.raises(WorkflowSpecError):
            resolve_fn("json:no_such_attr")

    def test_non_callable_rejected(self):
        with pytest.raises(WorkflowSpecError):
            resolve_fn("json:__name__")


class TestWorkflowSpec:
    def make_spec(self):
        spec = WorkflowSpec(name="demo", version="2", parameters={"n": 3})
        spec.add_task_type(0, square_task, n_workers=2)
        spec.add_task_type(1, shout_task, n_workers=1, json_io=False)
        return spec

    def test_json_round_trip(self):
        spec = self.make_spec()
        clone = WorkflowSpec.from_json(spec.to_json())
        assert clone.name == "demo" and clone.version == "2"
        assert clone.parameters == {"n": 3}
        assert [t.work_type for t in clone.task_types] == [0, 1]
        assert clone.task_types[1].json_io is False

    def test_duplicate_work_type_rejected(self):
        spec = self.make_spec()
        with pytest.raises(WorkflowSpecError):
            spec.add_task_type(0, square_task)

    def test_malformed_json_rejected(self):
        with pytest.raises(WorkflowSpecError):
            WorkflowSpec.from_json('{"version": "1"}')  # no name

    def test_run_workflow_end_to_end(self):
        # Ship the spec as JSON; "the other site" rebuilds and runs it.
        shipped = self.make_spec().to_json()
        spec = WorkflowSpec.from_json(shipped)
        eq = EQSQL(MemoryTaskStore())
        results = run_workflow(
            spec,
            eq,
            payloads={
                0: [json.dumps({"x": i}) for i in range(4)],
                1: ["osprey", "emews"],
            },
            timeout=30,
        )
        eq.close()
        assert [json.loads(r)["y"] for r in results[0]] == [0, 1, 4, 9]
        assert results[1] == ["OSPREY", "EMEWS"]

    def test_undeclared_work_type_rejected(self):
        spec = self.make_spec()
        eq = EQSQL(MemoryTaskStore())
        with pytest.raises(WorkflowSpecError):
            run_workflow(spec, eq, payloads={9: ["{}"]})
        eq.close()

    def test_empty_spec_rejected(self):
        eq = EQSQL(MemoryTaskStore())
        with pytest.raises(WorkflowSpecError):
            run_workflow(WorkflowSpec(name="empty"), eq, payloads={})
        eq.close()


class TestModelRegistry:
    CASES = [
        ("small", {"n": 2}, {"doubled": 4, "label": ""}),
        ("labeled", {"n": 5, "label": "x"}, {"doubled": 10, "label": "x"}),
    ]

    def test_publish_and_get(self):
        registry = ModelRegistry()
        record = registry.publish("doubler", "1.0", doubling_model, self.CASES)
        assert registry.get("doubler", "1.0") is record
        assert registry.get("doubler") is record  # latest
        assert registry.versions("doubler") == ["1.0"]
        assert registry.models() == ["doubler"]

    def test_publication_refused_on_failing_cases(self):
        registry = ModelRegistry()
        bad_cases = [("wrong", {"n": 2}, {"doubled": 5, "label": ""})]
        with pytest.raises(ValidationError, match="refusing to publish"):
            registry.publish("doubler", "1.0", doubling_model, bad_cases)
        assert registry.models() == []

    def test_publish_without_cases_rejected(self):
        with pytest.raises(ValidationError):
            ModelRegistry().publish("m", "1", doubling_model, [])

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.publish("doubler", "1.0", doubling_model, self.CASES)
        with pytest.raises(ValidationError, match="already published"):
            registry.publish("doubler", "1.0", doubling_model, self.CASES)

    def test_latest_by_publication_time(self):
        from repro.util.clock import VirtualClock

        clock = VirtualClock()
        registry = ModelRegistry(clock=clock)
        registry.publish("doubler", "1.0", doubling_model, self.CASES)
        clock.advance(10)
        registry.publish("doubler", "1.1", doubling_model, self.CASES)
        assert registry.get("doubler").version == "1.1"

    def test_unknown_model(self):
        with pytest.raises(NotFoundError):
            ModelRegistry().get("ghost")

    def test_regression_detected_on_revalidation(self):
        """§II-B3b: the registry detects correctness regressions."""
        registry = ModelRegistry()
        _BROKEN_BEHAVIOUR["offset"] = 0
        registry.publish(
            "drifter", "1.0", drifting_model,
            [("case", {"n": 3}, {"value": 3})],
        )
        assert registry.validate("drifter").passed
        # The code drifts (a bad refactor lands).
        _BROKEN_BEHAVIOUR["offset"] = 1
        try:
            report = registry.validate("drifter")
            assert not report.passed
            assert report.regressions[0].case == "case"
            assert "expected 3" in report.regressions[0].mismatches[0]
            assert "0/1 cases passed" in report.summary()
        finally:
            _BROKEN_BEHAVIOUR["offset"] = 0

    def test_model_exception_is_a_case_failure(self):
        registry = ModelRegistry()
        _BROKEN_BEHAVIOUR["offset"] = 0
        registry.publish(
            "drifter", "2.0", drifting_model, [("case", {"n": 1}, {"value": 1})]
        )
        report_fn = registry.get("drifter", "2.0")
        # Validate against a payload the model crashes on by publishing
        # a new version with a bad case, skipping the publish gate.
        record = registry.publish(
            "crasher", "1.0", drifting_model,
            [("boom", {"wrong-key": 1}, {"value": 1})],
            validate_now=False,
        )
        report = registry.validate("crasher", "1.0")
        assert not report.passed
        assert report.results[0].error is not None
        del report_fn, record
